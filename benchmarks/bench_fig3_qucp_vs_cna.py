"""Fig. 3 — QuCP vs CNA: three simultaneous benchmarks on IBM Q 27.

Reproduces both panels: (a) JSD for the distribution-output combos and
(b) PST for the deterministic combos, each with the unitary x3 repeats
and the mixed combinations the paper uses.  QuCP mitigates crosstalk at
partition level (sigma = 4); CNA partitions crosstalk-blind and only
steers gates away from suspect links during mapping.

Paper headline: QuCP improves JSD by 10.5% and PST by 89.9% over CNA on
average.  The shape assertion is that QuCP wins both metrics on average.
"""

import numpy as np
from conftest import print_table

from repro.core import cna_compile, execute_allocation, qucp_allocate
from repro.workloads import workload

#: Fig. 3a combos (JSD, lower is better).
JSD_COMBOS = [
    ("lin x3", ["lin", "lin", "lin"]),
    ("qec x3", ["qec", "qec", "qec"]),
    ("var x3", ["var", "var", "var"]),
    ("bell x3", ["bell", "bell", "bell"]),
    ("qec-var-bell", ["qec", "var", "bell"]),
    ("qec-bell-lin", ["qec", "bell", "lin"]),
    ("var-bell-lin", ["var", "bell", "lin"]),
    ("qec-var-lin", ["qec", "var", "lin"]),
]

#: Fig. 3b combos (PST, higher is better).
PST_COMBOS = [
    ("adder x3", ["adder", "adder", "adder"]),
    ("4mod x3", ["4mod", "4mod", "4mod"]),
    ("fred x3", ["fred", "fred", "fred"]),
    ("alu x3", ["alu", "alu", "alu"]),
    ("adder-fred-alu", ["adder", "fred", "alu"]),
    ("adder-4mod-alu", ["adder", "4mod", "alu"]),
    ("adder-fred-4mod", ["adder", "fred", "4mod"]),
    ("4mod-fred-alu", ["4mod", "fred", "alu"]),
]


def _run_combo(names, device, seed):
    circuits = [workload(n).circuit() for n in names]
    qucp_out = execute_allocation(
        qucp_allocate(circuits, device), shots=0, seed=seed)
    cna = cna_compile(circuits, device)
    cna_out = execute_allocation(cna.allocation, shots=0, seed=seed,
                                 transpiler_fn=cna.transpiler_fn())
    return qucp_out, cna_out


def _sweep(combos, device, metric):
    rows = []
    qucp_values, cna_values = [], []
    for seed, (label, names) in enumerate(combos):
        qucp_out, cna_out = _run_combo(names, device, seed=100 + seed)
        q = float(np.mean([getattr(o, metric)() for o in qucp_out]))
        c = float(np.mean([getattr(o, metric)() for o in cna_out]))
        qucp_values.append(q)
        cna_values.append(c)
        rows.append([label, f"{q:.3f}", f"{c:.3f}"])
    return rows, qucp_values, cna_values


def test_fig3a_jsd(benchmark, toronto):
    """Panel (a): JSD, lower is better; QuCP wins on average."""
    rows, qucp_vals, cna_vals = benchmark.pedantic(
        lambda: _sweep(JSD_COMBOS, toronto, "jsd"),
        rounds=1, iterations=1)
    print_table("Fig. 3a: JSD (lower is better)",
                ["combo", "QuCP", "CNA"], rows)
    improvement = (np.mean(cna_vals) - np.mean(qucp_vals)) \
        / np.mean(cna_vals) * 100
    print(f"QuCP JSD improvement over CNA: {improvement:.1f}% "
          f"(paper: 10.5%)")
    assert np.mean(qucp_vals) <= np.mean(cna_vals) + 1e-6


def test_fig3b_pst(benchmark, toronto):
    """Panel (b): PST, higher is better; QuCP wins on average."""
    rows, qucp_vals, cna_vals = benchmark.pedantic(
        lambda: _sweep(PST_COMBOS, toronto, "pst"),
        rounds=1, iterations=1)
    print_table("Fig. 3b: PST (higher is better)",
                ["combo", "QuCP", "CNA"], rows)
    improvement = (np.mean(qucp_vals) - np.mean(cna_vals)) \
        / np.mean(cna_vals) * 100
    print(f"QuCP PST improvement over CNA: {improvement:.1f}% "
          f"(paper: 89.9%)")
    assert np.mean(qucp_vals) >= np.mean(cna_vals) - 1e-6

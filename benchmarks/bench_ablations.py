"""Ablations on the design choices DESIGN.md calls out.

1. **ALAP vs ASAP task scheduling** — the paper (Sec. II-B) adopts ALAP
   "allowing qubits to remain in the ground state as long as possible";
   the ablation quantifies how much fidelity ASAP loses for short
   programs co-scheduled with deep ones.
2. **Allocator shoot-out** — QuCP vs the crosstalk-blind policies
   (MultiQC, QuCloud) and SRB-driven QuMC on the same mixed workload.
3. **Crosstalk on/off** — how much of the parallel-execution fidelity
   loss the crosstalk model itself accounts for.
"""

import numpy as np
from conftest import print_table

from repro.circuits import ghz_circuit
from repro.core import (
    execute_allocation,
    multiqc_allocate,
    oracle_characterization,
    qucloud_allocate,
    qucp_allocate,
    qumc_allocate,
)
from repro.sim.executor import Program, run_parallel
from repro.workloads import workload


def test_ablation_alap_vs_asap(benchmark, toronto):
    """ALAP protects the short program; ASAP lets it decohere."""
    deep = ghz_circuit(3)
    for _ in range(10):
        deep.cx(0, 1).cx(1, 2)
    deep.measure_all()
    short = ghz_circuit(3).measure_all()

    def run(mode):
        programs = [Program(deep.copy(), (0, 1, 2)),
                    Program(short.copy(), (3, 5, 8))]
        res = run_parallel(programs, toronto, shots=0, scheduling=mode)[1]
        return (res.probabilities.get("000", 0.0)
                + res.probabilities.get("111", 0.0))

    alap, asap = benchmark.pedantic(
        lambda: (run("alap"), run("asap")), rounds=1, iterations=1)
    print_table("Ablation: scheduling discipline (short-program fidelity)",
                ["discipline", "GHZ fidelity"],
                [["ALAP (paper)", f"{alap:.3f}"],
                 ["ASAP", f"{asap:.3f}"]])
    assert alap > asap


def test_ablation_allocators(benchmark, toronto):
    """Mean PST of the allocation policies on a mixed workload."""
    names = ["adder", "fred", "alu"]
    circuits = [workload(n).circuit() for n in names]
    ratio_map = oracle_characterization(toronto)

    def run_all():
        rows = {}
        allocs = {
            "QuCP (sigma=4)": qucp_allocate(circuits, toronto),
            "QuMC (SRB oracle)": qumc_allocate(circuits, toronto,
                                               ratio_map=ratio_map),
            "MultiQC": multiqc_allocate(circuits, toronto),
            "QuCloud": qucloud_allocate(circuits, toronto),
        }
        for label, alloc in allocs.items():
            outs = execute_allocation(alloc, shots=0, seed=42)
            rows[label] = float(np.mean([o.pst() for o in outs]))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table("Ablation: allocator policies (mean PST, higher better)",
                ["policy", "mean PST"],
                [[k, f"{v:.3f}"] for k, v in rows.items()])
    # Crosstalk-aware policies should not lose to crosstalk-blind ones.
    blind_best = max(rows["MultiQC"], rows["QuCloud"])
    assert rows["QuCP (sigma=4)"] >= blind_best - 0.05
    assert rows["QuMC (SRB oracle)"] >= blind_best - 0.05


def test_ablation_crosstalk_onoff(benchmark, toronto):
    """How much fidelity the crosstalk model itself costs."""
    circuits = [workload("alu").circuit() for _ in range(3)]
    alloc = qucp_allocate(circuits, toronto, sigma=1.0)  # packed tight

    def run(include):
        outs = execute_allocation(alloc, shots=0, seed=9,
                                  include_crosstalk=include)
        return float(np.mean([o.pst() for o in outs]))

    with_ct, without_ct = benchmark.pedantic(
        lambda: (run(True), run(False)), rounds=1, iterations=1)
    print_table("Ablation: ground-truth crosstalk contribution",
                ["crosstalk", "mean PST"],
                [["on", f"{with_ct:.3f}"], ["off", f"{without_ct:.3f}"]])
    assert without_ct >= with_ct

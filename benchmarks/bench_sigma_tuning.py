"""Sigma tuning (Sec. IV-A text) — QuCP matches QuMC once sigma >= 4.

Sweeps the crosstalk parameter and compares QuCP's partition decisions
against SRB-characterized QuMC on the same workload.  The paper reports
that sigma >= 4 makes the two agree, which is how sigma = 4 was chosen.
"""

from conftest import print_table

from repro.core import oracle_characterization, qucp_allocate, qumc_allocate
from repro.workloads import workload


def _partitions(alloc):
    return set(map(tuple, alloc.partitions))


def test_sigma_tuning_matches_qumc(benchmark, toronto):
    """Find the smallest sigma whose partitions equal QuMC's."""
    circuits = [workload("4mod5-v1_22").circuit() for _ in range(3)]
    ratio_map = oracle_characterization(toronto)

    def sweep():
        qumc_parts = _partitions(
            qumc_allocate(circuits, toronto, ratio_map=ratio_map))
        rows = []
        matched_from = None
        for sigma in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0):
            qucp_parts = _partitions(
                qucp_allocate(circuits, toronto, sigma=sigma))
            match = qucp_parts == qumc_parts
            if match and matched_from is None:
                matched_from = sigma
            rows.append([f"{sigma:g}", "yes" if match else "no"])
        return rows, matched_from

    rows, matched_from = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("sigma tuning: QuCP partitions == QuMC partitions?",
                ["sigma", "match"], rows)
    print(f"QuCP matches QuMC from sigma = {matched_from} "
          f"(paper: sigma >= 4)")

    assert matched_from is not None
    assert matched_from <= 4.0
    # And sigma = 4 itself matches (the paper's operating point).
    matches = dict((float(r[0]), r[1]) for r in rows)
    assert matches[4.0] == "yes"

"""Cold-miss layout-search benchmark: vectorized vs reference search.

A cache-miss compile is dominated by the exhaustive (<= 7 qubit) layout
permutation search, not graph work — the distance tables are already
cached on the :class:`~repro.transpiler.DeviceContext`.  This bench
times :func:`~repro.transpiler.noise_aware_layout` over a partition mix
shaped like parallel-execution traffic (4–6 qubit induced partitions of
ibm_toronto plus small standalone devices, with and without
calibration) under both engines:

- **reference** — the historical scalar loop over
  ``itertools.permutations`` (``search_mode="reference"``);
- **vectorized** — the memoized permutation table scored with numpy
  gathers over the context's reliability matrix and readout vector,
  pruned by interaction hop budget (``search_mode="vectorized"``).

Every pair of results is checked for cost equality while timing, so the
speedup is never bought with a worse layout.  The acceptance gate (also
run in CI via ``--smoke``): vectorized >= 4x over reference on the
6-qubit partition mix.  Timings land in ``BENCH_layout.json``.

Run:  PYTHONPATH=../src python bench_layout.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import List, Sequence, Tuple

import numpy as np

from conftest import connected_subset, print_table

from repro.circuits import QuantumCircuit, random_circuit
from repro.hardware import ibm_toronto, linear_device
from repro.transpiler import (
    DeviceContext,
    interaction_counts,
    layout_cost,
    noise_aware_layout,
)

#: CI override knob (mirrors TRANSPILE_SPEEDUP_FLOOR and friends).
SPEEDUP_FLOOR = float(os.environ.get("LAYOUT_SPEEDUP_FLOOR", "4.0"))

ARTIFACT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "BENCH_layout.json")

Case = Tuple[QuantumCircuit, DeviceContext]


def partition_mix(num_cases: int, seed: int) -> List[Case]:
    """(measured circuit, partition sub-context) cold-miss requests.

    Mirrors ``transpile_for_partition``'s layout step: 4–6 qubit
    induced partitions of ibm_toronto (calibrated) interleaved with
    small standalone devices, one of them calibration-free.
    """
    rng = np.random.default_rng(seed)
    toronto = ibm_toronto()
    device_ctx = DeviceContext(toronto.coupling, toronto.calibration)
    bare = linear_device(6, seed=11)
    bare_ctx = DeviceContext(bare.coupling, None)
    cal_ctx = DeviceContext(bare.coupling, bare.calibration)

    cases: List[Case] = []
    for i in range(num_cases):
        size = int(rng.integers(4, 7))
        n_logical = int(rng.integers(max(2, size - 2), size + 1))
        circuit = random_circuit(n_logical, int(rng.integers(8, 16)),
                                 seed=seed * 1000 + i)
        circuit.measure_all()
        which = i % 3
        if which == 0:
            start = int(rng.integers(toronto.num_qubits))
            part = connected_subset(toronto.coupling, start, size)
            ctx = device_ctx.partition_context(part)
        elif which == 1:
            ctx = cal_ctx
        else:
            ctx = bare_ctx
        cases.append((circuit, ctx))
    return cases


def run_mode(cases: Sequence[Case], mode: str) -> float:
    start = time.perf_counter()
    for circuit, ctx in cases:
        noise_aware_layout(circuit, ctx.coupling, ctx.calibration,
                           context=ctx, search_mode=mode)
    return time.perf_counter() - start


def check_cost_equivalence(cases: Sequence[Case]) -> None:
    """Both engines must return a cost-minimal layout on every case."""
    for circuit, ctx in cases:
        inter = interaction_counts(circuit)
        measured = sorted({inst.qubits[0] for inst in circuit
                           if inst.name == "measure"})
        vec = noise_aware_layout(circuit, ctx.coupling, ctx.calibration,
                                 context=ctx, search_mode="vectorized")
        ref = noise_aware_layout(circuit, ctx.coupling, ctx.calibration,
                                 context=ctx, search_mode="reference")
        cv = layout_cost(vec, inter, ctx.reliability_distance,
                         ctx.calibration, measured)
        cr = layout_cost(ref, inter, ctx.reliability_distance,
                         ctx.calibration, measured)
        # Relative tolerance: UNREACHABLE (1e9) terms put costs at a
        # magnitude where vectorized-vs-scalar summation order rounds
        # differently in the last ulps.
        if not math.isclose(cv, cr, rel_tol=1e-9, abs_tol=1e-9):
            raise AssertionError(
                f"vectorized cost {cv} != reference cost {cr} "
                f"on {circuit.name}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI configuration with the speedup "
                             "gate")
    parser.add_argument("--cases", type=int, default=None,
                        help="number of layout requests (default 120; "
                             "48 with --smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed passes over the mix (default 5; 3 "
                             "with --smoke)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    num_cases = args.cases or (48 if args.smoke else 120)
    repeats = args.repeats or (3 if args.smoke else 5)
    cases = partition_mix(num_cases, args.seed)

    check_cost_equivalence(cases)
    # Untimed warm-up: the permutation tables and context matrices are
    # shared cold-path state; both engines get them warm so the timing
    # isolates the search itself.
    run_mode(cases, "reference")
    run_mode(cases, "vectorized")

    ref_s = min(run_mode(cases, "reference") for _ in range(repeats))
    vec_s = min(run_mode(cases, "vectorized") for _ in range(repeats))
    speedup = ref_s / vec_s

    n = len(cases)
    print_table(
        f"Cold-miss exhaustive layout search, {n} requests "
        f"(4-6q partition mix, best of {repeats})",
        ["engine", "total(ms)", "per-request(us)", "speedup"],
        [
            ["reference (scalar loop)", f"{ref_s * 1e3:.1f}",
             f"{ref_s / n * 1e6:.0f}", "1.00x"],
            ["vectorized (pruned numpy)", f"{vec_s * 1e3:.1f}",
             f"{vec_s / n * 1e6:.0f}", f"{speedup:.2f}x"],
        ])

    payload = {
        "bench": "bench_layout",
        "cases": n,
        "repeats": repeats,
        "seed": args.seed,
        "smoke": bool(args.smoke),
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "speedup": speedup,
        "floor": SPEEDUP_FLOOR,
    }
    with open(ARTIFACT, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {ARTIFACT}")

    print(f"\nvectorized-vs-reference layout-search speedup: "
          f"{speedup:.2f}x (floor {SPEEDUP_FLOOR:g}x)")
    if speedup < SPEEDUP_FLOOR:
        print("FAIL: vectorized layout search did not reach the "
              f"{SPEEDUP_FLOOR:g}x floor", file=sys.stderr)
        return 1
    print(f"OK: vectorized layout search beats the scalar reference "
          f"by >= {SPEEDUP_FLOOR:g}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Fig. 2 — SRB crosstalk characterization of IBM Q 27 Toronto.

Runs the full SRB campaign over every one-hop link pair of the device and
flags pairs whose simultaneous EPC ratio exceeds 2 — the red arrows of
the paper's figure.  Because our device carries a hidden ground-truth
crosstalk model, the bench can also score the campaign's precision and
recall, which a real experiment cannot.
"""

from conftest import print_table

from repro.characterization import characterize_crosstalk


def test_fig2_crosstalk_map(benchmark, toronto):
    """Discover Toronto's crosstalk-affected pairs via SRB."""
    charac = benchmark.pedantic(
        lambda: characterize_crosstalk(
            toronto, seeds=2, shots=0, lengths=(1, 8, 20, 40),
            threshold=2.0),
        rounds=1, iterations=1)

    significant = charac.significant_pairs()
    truth = toronto.crosstalk.affected_pairs(threshold=2.0)
    rows = [
        [f"{a}x{b}",
         f"{charac.ratio_map()[frozenset((a, b))]:.2f}",
         f"{toronto.crosstalk.factor(a, b):.2f}"]
        for a, b in significant
    ]
    print_table("Fig. 2: SRB-flagged crosstalk pairs (ratio >= 2)",
                ["pair", "measured ratio", "ground truth"], rows)

    quality = charac.compare_to_ground_truth(toronto)
    print(f"precision={quality['precision']:.2f} "
          f"recall={quality['recall']:.2f} "
          f"({int(quality['found_pairs'])} found / "
          f"{int(quality['true_pairs'])} true)")

    # Shape: a minority of pairs is affected, and SRB finds most of them.
    assert 0 < len(significant) < len(charac.results)
    assert quality["recall"] >= 0.7
    assert quality["precision"] >= 0.7

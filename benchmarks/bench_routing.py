"""Routing-policy ablation: basic shortest-path vs SABRE lookahead.

The transpiler is part of the substrate every paper experiment runs on
(Sec. II-B "Qubit mapping"); this bench quantifies the SWAP cost of the
two routers on representative circuits and asserts SABRE never loses.
"""

from conftest import print_table

from repro.circuits import qft_circuit, quantum_volume_circuit, random_circuit
from repro.hardware import linear_device
from repro.transpiler import transpile

CASES = [
    ("qft5/line6", lambda: qft_circuit(5)),
    ("qft6/line6", lambda: qft_circuit(6)),
    ("qv6/line6", lambda: quantum_volume_circuit(6, seed=3)),
    ("random6x8", lambda: random_circuit(6, 8, seed=5)),
]


def test_router_ablation(benchmark):
    """SWAP counts per router on a 6-qubit line device."""
    device = linear_device(6, seed=2)

    def run():
        rows = []
        totals = {"basic": 0, "sabre": 0}
        for label, make in CASES:
            counts = {}
            for router in ("basic", "sabre"):
                result = transpile(make(), device.coupling,
                                   device.calibration, router=router)
                counts[router] = result.num_swaps
                totals[router] += result.num_swaps
            rows.append([label, counts["basic"], counts["sabre"]])
        return rows, totals

    rows, totals = benchmark.pedantic(run, rounds=1, iterations=1)
    rows.append(["TOTAL", totals["basic"], totals["sabre"]])
    print_table("Router ablation: SWAP insertions (lower is better)",
                ["circuit", "basic", "sabre"], rows)
    assert totals["sabre"] <= totals["basic"]

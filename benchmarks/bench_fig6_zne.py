"""Fig. 6 — error mitigation: Baseline vs QuCP+ZNE vs ZNE.

All eight Table II benchmarks on IBM Q 65 Manhattan, scale factors
1.0-2.5 (four folded circuits), best-of {Linear, Poly, Richardson}
extrapolation.  Paper shape: the baseline has the largest error; ZNE is
usually lowest but needs 4x the executions; QuCP+ZNE recovers most of
the benefit in a single parallel job (paper: ~2x average error
reduction, 11x best case).
"""

import numpy as np
from conftest import print_table

from repro.mitigation import run_zne_comparison
from repro.workloads import workload_names


def test_fig6_zne_comparison(benchmark, manhattan):
    """The three bars per benchmark."""
    def run_all():
        out = []
        for i, name in enumerate(workload_names()):
            circuit = workload_by_name(name)
            out.append(run_zne_comparison(circuit, manhattan, shots=0,
                                          seed=900 + i))
        return out

    def workload_by_name(name):
        from repro.workloads import workload

        return workload(name).circuit()

    comparisons = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [c.name, f"{c.baseline_error:.3f}", f"{c.qucp_zne_error:.3f}",
         f"{c.zne_error:.3f}", f"{c.qucp_zne_throughput:.1%}"]
        for c in comparisons
    ]
    print_table(
        "Fig. 6: absolute error (Z-parity observable)",
        ["benchmark", "Baseline", "QuCP+ZNE", "ZNE", "QuCP thr"], rows)

    reductions = [
        c.baseline_error / c.qucp_zne_error
        for c in comparisons if c.qucp_zne_error > 1e-6
    ]
    print(f"QuCP+ZNE error reduction vs baseline: "
          f"avg {np.mean(reductions):.1f}x, best "
          f"{max(reductions):.1f}x (paper: 2x avg, 11x best)")

    base = np.mean([c.baseline_error for c in comparisons])
    qucp = np.mean([c.qucp_zne_error for c in comparisons])
    zne = np.mean([c.zne_error for c in comparisons])
    # Shape: baseline worst on average; both mitigated flows beat it.
    assert qucp < base
    assert zne < base
    # QuCP+ZNE runs all four folded circuits at once: 4x the qubits of a
    # single run.
    from repro.workloads import workload

    for c, name in zip(comparisons, workload_names()):
        nq = workload(name).num_qubits
        assert c.qucp_zne_throughput == 4 * nq / 65

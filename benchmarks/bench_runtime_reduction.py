"""Runtime reduction (paper Sec. I/II + abstract).

The paper's motivating claim: parallel execution "improves the hardware
throughput and reduces the overall runtime", with up to 6x reduction for
the 6-copy Manhattan experiments.  Two benches:

1. the pure queueing arithmetic (``batched_speedup``);
2. the online multi-user scheduler with real QuCP allocations on
   Toronto, serial vs batched service.
"""

from conftest import print_table

from repro.core import OnlineScheduler, SubmittedProgram, batched_speedup
from repro.workloads import workload


def test_runtime_reduction_six_copies(benchmark):
    """Up to six-fold runtime reduction for 6-way batching."""
    rows = benchmark.pedantic(
        lambda: [
            [k, f"{batched_speedup(6, k, 1e6)['runtime_reduction']:.2f}x"]
            for k in (1, 2, 3, 6)
        ],
        rounds=1, iterations=1)
    print_table("Runtime reduction vs batch size (6 programs)",
                ["batch size", "reduction"], rows)
    assert rows[-1][1] == "6.00x"   # the paper's "up to six times"


def test_online_scheduler_speedup(benchmark, toronto):
    """Multi-user batching beats serial service on makespan and wait."""
    names = ["adder", "fred", "lin", "4mod", "bell", "qec", "adder",
             "var"]
    subs = [
        SubmittedProgram(workload(n).circuit(), arrival_ns=i * 5e4,
                         user=f"user{i}")
        for i, n in enumerate(names)
    ]

    def run():
        serial = OnlineScheduler(toronto, fidelity_threshold=0.0,
                                 job_overhead_ns=1e6).schedule(subs)
        batched = OnlineScheduler(toronto, fidelity_threshold=1.0,
                                  job_overhead_ns=1e6).schedule(subs)
        return serial, batched

    serial, batched = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["serial (th=0, identical best regions contended)",
         serial.num_jobs, f"{serial.makespan_ns / 1e6:.2f}",
         f"{serial.mean_turnaround_ns / 1e6:.2f}",
         f"{serial.mean_throughput:.1%}"],
        ["batched (th=1)", batched.num_jobs,
         f"{batched.makespan_ns / 1e6:.2f}",
         f"{batched.mean_turnaround_ns / 1e6:.2f}",
         f"{batched.mean_throughput:.1%}"],
    ]
    print_table(
        "Online scheduling: 8 user submissions on Toronto",
        ["service", "jobs", "makespan ms", "mean turnaround ms",
         "mean throughput"],
        rows)
    reduction = serial.makespan_ns / batched.makespan_ns
    print(f"runtime reduction: {reduction:.2f}x")

    assert batched.num_jobs < serial.num_jobs
    assert batched.makespan_ns < serial.makespan_ns
    assert batched.mean_throughput > serial.mean_throughput

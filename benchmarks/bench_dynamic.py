"""Dynamic-circuit benchmark: unroll-then-cache vs per-shot branching.

Prices the two execution strategies for control-flow programs and gates
the properties the subsystem promises:

1. **Unroll vs feed-forward** — statically-resolvable loop programs run
   through ``run_dynamic`` twice: ``allow_unroll=True`` (expand, then
   the ordinary distribution-sampling simulator — one density-matrix
   evolution total) and ``allow_unroll=False`` (forced per-shot
   trajectories — one evolution *per shot*).  Gate: the unrolled path is
   bit-identical to simulating the expanded flat circuit under the same
   seed, so caching unrolled artifacts is sound.

2. **Feed-forward accuracy** — every dynamic-suite workload's empirical
   distribution is checked against the exact tree walk
   (:func:`repro.sim.dynamic_probabilities`) by total-variation
   distance.  Gate: TV below a sampling-noise threshold.

3. **Scheduler cache** — the dynamic suite is submitted twice (freshly
   rebuilt circuits each time) through the provider's fleet backend.
   Gate: the second job reports **0 transpile misses** — repeated
   dynamic programs re-use cached artifacts end to end.

4. **Mixed traffic** — scheduler turnaround as the dynamic fraction of
   a Poisson stream grows (shape only, no gate).

Outcomes land in ``BENCH_dynamic.json``.

Run:  PYTHONPATH=../src python bench_dynamic.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Sequence

from conftest import print_table

import repro
from repro.circuits import QuantumCircuit
from repro.core import SubmittedProgram
from repro.hardware import linear_device
from repro.sim import dynamic_probabilities, run_circuit, run_dynamic
from repro.transpiler import expand_control_flow
from repro.workloads import (
    dynamic_circuit,
    dynamic_workload_names,
    synthesize_traffic,
)

ARTIFACT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "BENCH_dynamic.json")


def nested_echo() -> QuantumCircuit:
    """A larger statically-resolvable program for honest timing: an
    8-round echo loop over a 4-qubit entangler, unrolling to ~100
    instructions."""
    qc = QuantumCircuit(4, 4, name="nested_echo")
    qc.h(0)
    body = QuantumCircuit(4, 4)
    for q in range(3):
        body.cx(q, q + 1)
    for q in range(4):
        body.x(q)
        body.x(q)
    for q in reversed(range(3)):
        body.cx(q, q + 1)
    qc.for_loop(range(8), body)
    for q in range(4):
        qc.measure(q, q)
    return qc


def tv_distance(p: Dict[str, float], q: Dict[str, float]) -> float:
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def time_run(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI configuration with the same gates")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    timing_shots = 64 if args.smoke else 256
    accuracy_shots = 1500 if args.smoke else 4000
    tv_threshold = 0.12 if args.smoke else 0.08
    repeats = 1 if args.smoke else 3
    failures: List[str] = []

    # --- 1. unroll-then-cache vs per-shot branching --------------------
    # Noisy execution: the trajectory engine pays one density-matrix
    # evolution per shot, the unrolled path pays one total plus a
    # multinomial draw — that gap is exactly what expand_control_flow
    # buys on resolvable programs.
    resolvable = [("echo_loop", dynamic_circuit("echo_loop"), 2),
                  ("nested_echo", nested_echo(), 4)]
    unroll_rows: List[List[object]] = []
    unroll_artifact: Dict[str, Dict] = {}
    for name, circ, width in resolvable:
        noise = linear_device(width, seed=3).noise_model()
        unrolled_s = time_run(
            lambda c=circ, nm=noise: run_dynamic(
                c, noise_model=nm, shots=timing_shots, seed=args.seed,
                allow_unroll=True),
            repeats)
        branching_s = time_run(
            lambda c=circ, nm=noise: run_dynamic(
                c, noise_model=nm, shots=timing_shots, seed=args.seed,
                allow_unroll=False),
            repeats)
        speedup = branching_s / unrolled_s
        via_dynamic = run_dynamic(circ, noise_model=noise,
                                  shots=timing_shots, seed=args.seed)
        via_flat = run_circuit(expand_control_flow(circ),
                               noise_model=noise, shots=timing_shots,
                               seed=args.seed)
        identical = via_dynamic.counts == via_flat.counts
        if not identical:
            failures.append(
                f"{name}: unrolled run_dynamic diverged from the "
                "expanded flat circuit under the same seed")
        unroll_rows.append([name, timing_shots, f"{unrolled_s * 1e3:.1f}",
                            f"{branching_s * 1e3:.1f}",
                            f"{speedup:.1f}x", identical])
        unroll_artifact[name] = {
            "shots": timing_shots,
            "unrolled_s": unrolled_s,
            "branching_s": branching_s,
            "speedup": speedup,
            "bit_identical": identical,
        }
    print_table(
        f"Unroll-then-cache vs per-shot branching (noisy, "
        f"{timing_shots} shots)",
        ["circuit", "shots", "unrolled(ms)", "branching(ms)",
         "branch/unroll", "bit-identical"],
        unroll_rows)

    # --- 2. feed-forward accuracy vs the exact tree walk ---------------
    accuracy_rows: List[List[object]] = []
    accuracy_artifact: Dict[str, Dict] = {}
    for name in dynamic_workload_names():
        circ = dynamic_circuit(name)
        exact = dynamic_probabilities(circ)
        empirical = run_dynamic(circ, shots=accuracy_shots,
                                seed=args.seed).probabilities
        tv = tv_distance(exact, empirical)
        ok = tv <= tv_threshold
        if not ok:
            failures.append(
                f"{name}: TV distance {tv:.3f} above the "
                f"{tv_threshold:g} sampling-noise threshold")
        accuracy_rows.append([name, accuracy_shots, len(exact),
                              f"{tv:.4f}", ok])
        accuracy_artifact[name] = {
            "shots": accuracy_shots,
            "outcomes": len(exact),
            "tv_distance": tv,
            "within_threshold": ok,
        }
    print_table(
        f"Feed-forward empirical vs exact tree walk "
        f"(noiseless, {accuracy_shots} shots, TV <= {tv_threshold:g})",
        ["workload", "shots", "outcomes", "TV", "ok"],
        accuracy_rows)

    # --- 3. repeated dynamic programs through the scheduler ------------
    # Two jobs submit the same dynamic suite, *rebuilt from scratch* the
    # second time (fresh circuit objects — key canonicalization must see
    # through that).  The second job's transpile-miss delta must be 0.
    provider = repro.provider(job_workers=1)
    devices = [linear_device(5, seed=21), linear_device(5, seed=22)]
    backend = provider.fleet_backend(devices, policy="least_loaded",
                                     allocator="qucp",
                                     fidelity_threshold=1.0)

    def suite_submissions() -> List[SubmittedProgram]:
        return [
            SubmittedProgram(circuit=dynamic_circuit(name),
                             arrival_ns=float(i) * 1e5, user=f"user{i}")
            for i, name in enumerate(dynamic_workload_names())
        ]

    cold = backend.run(suite_submissions(), shots=timing_shots,
                       seed=args.seed).result().metadata
    warm = backend.run(suite_submissions(), shots=timing_shots,
                       seed=args.seed).result().metadata
    if warm.transpile_misses != 0:
        failures.append(
            f"warm scheduler job re-transpiled "
            f"{warm.transpile_misses} dynamic program(s); expected 0")
    print_table(
        "Repeated dynamic suite through the fleet scheduler "
        "(cold vs warm job)",
        ["job", "programs", "dynamic", "transpile hits", "misses"],
        [["cold", cold.num_programs, cold.dynamic_programs,
          cold.transpile_hits, cold.transpile_misses],
         ["warm", warm.num_programs, warm.dynamic_programs,
          warm.transpile_hits, warm.transpile_misses]])
    cache_artifact = {
        "cold": {"transpile_hits": cold.transpile_hits,
                 "transpile_misses": cold.transpile_misses,
                 "dynamic_programs": cold.dynamic_programs},
        "warm": {"transpile_hits": warm.transpile_hits,
                 "transpile_misses": warm.transpile_misses,
                 "dynamic_programs": warm.dynamic_programs},
    }

    # --- 4. mixed static/dynamic traffic turnaround --------------------
    traffic_programs = 16 if args.smoke else 32
    fractions = [0.0, 0.3] if args.smoke else [0.0, 0.25, 0.5]
    traffic_rows: List[List[object]] = []
    traffic_artifact: Dict[str, Dict] = {}
    for fraction in fractions:
        subs = synthesize_traffic(
            traffic_programs, pattern="poisson",
            mean_interarrival_ns=2e5, mix="heavy_tail", seed=args.seed,
            dynamic_fraction=fraction)
        num_dynamic = sum(1 for s in subs
                          if s.circuit.has_control_flow()
                          or s.circuit.has_midcircuit_measurement())
        out = backend.run(subs, execute=False).result().schedule
        traffic_rows.append([
            f"{fraction:.2f}", traffic_programs, num_dynamic,
            out.num_jobs, f"{out.mean_turnaround_ns / 1e6:.2f}",
            f"{out.turnaround_p99_ns / 1e6:.2f}"])
        traffic_artifact[f"{fraction:.2f}"] = {
            "programs": traffic_programs,
            "dynamic_programs": num_dynamic,
            "num_jobs": out.num_jobs,
            "mean_turnaround_ns": out.mean_turnaround_ns,
            "p99_turnaround_ns": out.turnaround_p99_ns,
        }
    print_table(
        f"Mixed traffic turnaround vs dynamic fraction "
        f"({traffic_programs} programs, 0.2 ms interarrival)",
        ["dynamic fraction", "programs", "dynamic", "jobs",
         "turnaround(ms)", "p99(ms)"],
        traffic_rows)

    with open(ARTIFACT, "w") as fh:
        json.dump({"smoke": bool(args.smoke), "seed": args.seed,
                   "unroll_vs_branching": unroll_artifact,
                   "feedforward_accuracy": accuracy_artifact,
                   "scheduler_cache": cache_artifact,
                   "mixed_traffic": traffic_artifact},
                  fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {ARTIFACT}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("\nOK: unrolled execution bit-identical to the flat circuit, "
          "feed-forward within sampling noise of the exact tree walk, "
          "and 0 re-transpiles on the repeated dynamic suite")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Cross-device scaling: fidelity vs program size on all three chips.

Not a paper figure, but the context every paper claim lives in: larger
programs decay faster, and newer chips (Toronto/Manhattan) out-fidelity
the older Melbourne — which is why multi-programming *small* circuits on
*large* chips is the interesting regime.
"""

import numpy as np
from conftest import print_table

from repro.circuits import ghz_circuit
from repro.core import execute_allocation, qucp_allocate


def test_ghz_scaling_across_devices(benchmark, melbourne, toronto,
                                    manhattan):
    """GHZ fidelity vs size per device; monotone decay everywhere."""
    devices = (melbourne, toronto, manhattan)
    sizes = (2, 3, 4, 5)

    def run():
        table = {}
        for device in devices:
            series = []
            for n in sizes:
                qc = ghz_circuit(n).measure_all()
                alloc = qucp_allocate([qc], device)
                out = execute_allocation(alloc, shots=0, seed=n)[0]
                good = (out.result.probabilities.get("0" * n, 0.0)
                        + out.result.probabilities.get("1" * n, 0.0))
                series.append(good)
            table[device.name] = series
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name] + [f"{v:.3f}" for v in series]
        for name, series in table.items()
    ]
    print_table("GHZ fidelity vs size (best QuCP partition per device)",
                ["device"] + [f"GHZ-{n}" for n in sizes], rows)

    for name, series in table.items():
        # Larger GHZ states are never better than smaller ones (within
        # small numerical slack from different partitions).
        for a, b in zip(series, series[1:]):
            assert b <= a + 0.02, name
    # The old 15q chip loses to the newer large chips at every size.
    for idx in range(len(sizes)):
        assert table["ibm_melbourne"][idx] <= min(
            table["ibm_toronto"][idx], table["ibm_manhattan"][idx]
        ) + 0.05

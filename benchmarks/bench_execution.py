"""Execution-scaling benchmark: serial vs process-sharded simulation.

The multi-programming service spends its steady-state cycles *running*
programs: every dispatched hardware job is one
:func:`repro.sim.executor.run_parallel` batch.  This bench quantifies
the :class:`~repro.core.ExecutionService` over that unit of work — a
wide co-tenant batch on a 65q device, per-program cost in the tens of
milliseconds, exactly the load the measured route table sends to the
process pool:

- **serial** — the seed behaviour, one interpreter simulating every
  program in turn;
- **thread** — pool entry without escaping the GIL (the sims are pure
  Python/NumPy, so this measures dispatch overhead, not a win);
- **process, chunked** — contiguous per-worker chunks carrying the
  plain-data device fingerprint plus pre-spawned seeds; workers
  rebuild the noise model once and keep it for the pool's lifetime;
- **auto** — the measured route table (``choose_route``); on a 1-core
  host this must collapse to serial rather than pay pool overhead for
  nothing.

Two gates, both CI-run via ``--smoke``:

- sharded execution is **bit-identical** to serial — counts,
  probabilities, clbit records — on every route (hard gate, any host);
- the auto route's speedup over serial is >=
  ``EXECUTION_SPEEDUP_FLOOR`` (default 0.85: conservative, CI runners
  may be 1-2 cores where the honest answer is ~1.0x; a 4-core host
  sees the process route win — the artifact records ``cores`` so every
  committed number is interpretable).

Timings land in ``BENCH_execution.json``.

Run:  PYTHONPATH=../src python bench_execution.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from conftest import connected_subset, print_table

from repro.circuits import QuantumCircuit
from repro.core import ExecutionService
from repro.hardware import Device, ibm_manhattan, ibm_toronto
from repro.sim.executor import Program, run_parallel

#: CI override knob (mirrors TRANSPILE_SPEEDUP_FLOOR and friends).
SPEEDUP_FLOOR = float(os.environ.get("EXECUTION_SPEEDUP_FLOOR", "0.85"))

ARTIFACT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "BENCH_execution.json")


def disjoint_partitions(device: Device, sizes: Sequence[int],
                        rng: np.random.Generator) -> List[Tuple[int, ...]]:
    """Disjoint BFS-grown connected partitions covering the device."""
    partitions: List[Tuple[int, ...]] = []
    used: set = set()
    starts = list(rng.permutation(device.num_qubits))
    for size in sizes:
        for start in starts:
            if start in used:
                continue
            part = connected_subset(device.coupling, int(start), size)
            if len(part) == size and used.isdisjoint(part):
                partitions.append(part)
                used.update(part)
                break
    return partitions


def random_program(device: Device, partition: Tuple[int, ...],
                   rng: np.random.Generator, depth: int) -> Program:
    """A random program whose 2q gates respect *partition*'s links."""
    links = {frozenset(edge) for edge in device.coupling.edges}
    local_edges = [
        (i, j)
        for i in range(len(partition)) for j in range(i + 1, len(partition))
        if frozenset((partition[i], partition[j])) in links
    ]
    n = len(partition)
    circuit = QuantumCircuit(n, n)
    for _ in range(depth):
        r = rng.random()
        if local_edges and r < 0.4:
            i, j = local_edges[int(rng.integers(len(local_edges)))]
            circuit.cx(i, j)
        elif r < 0.6:
            circuit.rz(float(rng.uniform(0.0, 2.0 * np.pi)),
                       int(rng.integers(0, n)))
        elif r < 0.8:
            circuit.h(int(rng.integers(0, n)))
        else:
            circuit.x(int(rng.integers(0, n)))
    circuit.measure_all()
    return Program(circuit, partition)


def cotenant_batch(device: Device, sizes: Sequence[int], seed: int,
                   depth: int) -> List[Program]:
    rng = np.random.default_rng(seed)
    partitions = disjoint_partitions(device, sizes, rng)
    return [random_program(device, part, rng, depth)
            for part in partitions]


def identical(got, want) -> bool:
    return all(
        g.counts == w.counts
        and g.probabilities == w.probabilities
        and g.shots == w.shots
        and g.measured_clbits == w.measured_clbits
        for g, w in zip(got, want)) and len(got) == len(want)


def timed_mode(mode: str, workers: int, programs, device, shots: int,
               seed: int, repeats: int) -> Tuple[float, list]:
    """Best-of-*repeats* wall clock for one route; pools pre-warmed."""
    with ExecutionService(max_workers=workers, mode=mode) as svc:
        svc.run_parallel(programs, device, shots=shots, seed=seed)
        best = float("inf")
        results = None
        for _ in range(repeats):
            start = time.perf_counter()
            results = svc.run_parallel(programs, device, shots=shots,
                                       seed=seed)
            best = min(best, time.perf_counter() - start)
        if svc.stats["fallbacks"]:
            print(f"warning: {svc.stats['fallbacks']} inline fallbacks "
                  f"in {mode} mode", file=sys.stderr)
    return best, results


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI configuration with the identity "
                             "and floor gates")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--shots", type=int, default=4096)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repetitions per route (best-of)")
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    repeats = args.repeats or 3
    if args.smoke:
        device = ibm_toronto()
        sizes = [5, 5, 4, 4, 3]
        depth = 16
    else:
        # Depth matches the route table's measurement basis (transpiled
        # service workloads); shallow NN circuits undershoot it.
        device = ibm_manhattan()
        sizes = [7, 6, 6, 6, 5, 5, 5, 4, 4, 4, 3, 3]
        depth = 72
    programs = cotenant_batch(device, sizes, args.seed, depth)
    widths = [len(p.partition) for p in programs]

    # Untimed warm-up (noise model, contexts), then best-of like every
    # service route — the baseline must not pay cold-start the routes
    # are spared.
    want = run_parallel(programs, device, shots=args.shots, seed=args.seed)
    baseline_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_parallel(programs, device, shots=args.shots, seed=args.seed)
        baseline_s = min(baseline_s, time.perf_counter() - start)

    auto_route = ExecutionService.choose_route(
        len(programs), max(widths), args.shots)
    est_ms = ExecutionService.estimate_batch_ms(
        len(programs), max(widths), args.shots)

    rows = [["run_parallel (seed baseline)", f"{baseline_s * 1e3:.1f}",
             "1.00x", "yes"]]
    timings: Dict[str, float] = {"baseline_s": baseline_s}
    identical_everywhere = True
    for mode in ("serial", "thread", "process", "auto"):
        mode_s, results = timed_mode(mode, args.workers, programs, device,
                                     args.shots, args.seed, repeats)
        same = identical(results, want)
        identical_everywhere = identical_everywhere and same
        label = mode if mode != "auto" else f"auto (route: {auto_route})"
        rows.append([f"service {label}", f"{mode_s * 1e3:.1f}",
                     f"{baseline_s / mode_s:.2f}x",
                     "yes" if same else "NO"])
        timings[f"{mode}_s"] = mode_s
    print_table(
        f"Co-tenant batch of {len(programs)} programs "
        f"(widths {min(widths)}-{max(widths)}) on {device.name}, "
        f"{args.shots} shots, {cores} cores, {args.workers} workers, "
        f"estimated {est_ms:.0f} ms",
        ["path", "best-of-%d(ms)" % repeats, "vs baseline",
         "bit-identical"],
        rows)

    auto_speedup = baseline_s / timings["auto_s"]
    process_speedup = baseline_s / timings["process_s"]
    payload = {
        "bench": "bench_execution",
        "device": device.name,
        "programs": len(programs),
        "widths": widths,
        "shots": args.shots,
        "seed": args.seed,
        "smoke": bool(args.smoke),
        "cores": cores,
        "workers": args.workers,
        "repeats": repeats,
        "estimated_batch_ms": est_ms,
        "auto_route": auto_route,
        "auto_speedup": auto_speedup,
        "process_speedup": process_speedup,
        "bit_identical": identical_everywhere,
        "floor": SPEEDUP_FLOOR,
        **timings,
    }
    with open(ARTIFACT, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {ARTIFACT}")

    if not identical_everywhere:
        print("FAIL: a sharded route diverged from the serial baseline "
              "(bit-identity is the tentpole invariant)", file=sys.stderr)
        return 1
    print("OK: every route is bit-identical to the serial baseline")

    print(f"auto route ({auto_route}) speedup over baseline: "
          f"{auto_speedup:.2f}x (floor {SPEEDUP_FLOOR:g}x, "
          f"{cores} cores); explicit process: {process_speedup:.2f}x")
    if auto_speedup < SPEEDUP_FLOOR:
        print(f"FAIL: auto execution route at {auto_speedup:.2f}x did "
              f"not reach the {SPEEDUP_FLOOR:g}x floor — the measured "
              "route table picked a losing worker kind", file=sys.stderr)
        return 1
    print(f"OK: auto execution route >= {SPEEDUP_FLOOR:g}x of serial")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

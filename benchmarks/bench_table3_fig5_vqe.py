"""Table III + Fig. 5 — VQE of H2 under PG and QuCP+PG.

Three experiments with 8 / 10 / 12 scan values of the tied ansatz
parameter (16 / 20 / 24 measurement circuits).  PG runs them one at a
time (throughput 3.1% on Manhattan); QuCP+PG runs them all at once
(throughput 49.2% / 61.5% / 73.8% — matched exactly, since it is pure
qubit arithmetic).  dE_base compares against the ideal-simulator scan,
dE_theory against SciPy's exact eigensolver; the paper keeps every error
under 10%.
"""

import numpy as np
from conftest import print_table

from repro.vqe import (
    h2_hamiltonian,
    relative_error_percent,
    run_vqe_scan_ideal,
    run_vqe_scan_independent,
    run_vqe_scan_parallel,
)

EXPERIMENTS = {"(a)": 8, "(b)": 10, "(c)": 12}


def _run_experiment(n_params, manhattan, seed):
    thetas = np.linspace(-np.pi, np.pi, n_params)
    exact = h2_hamiltonian().ground_energy()
    ideal = run_vqe_scan_ideal(thetas)
    pg = run_vqe_scan_independent(thetas, manhattan, shots=8192,
                                  seed=seed)
    par = run_vqe_scan_parallel(thetas, manhattan, shots=8192, seed=seed)
    out = []
    for res in (pg, par):
        out.append({
            "method": res.method,
            "nc": res.num_simultaneous,
            "de_base": relative_error_percent(res.minimum_energy,
                                              ideal.minimum_energy),
            "de_theory": relative_error_percent(res.minimum_energy,
                                                exact),
            "throughput": res.throughput,
            "energies": res.energies,
        })
    return out, ideal.energies


def test_table3_vqe_h2(benchmark, manhattan):
    """The three Table III experiments."""
    def run_all():
        results = {}
        for label, n in EXPERIMENTS.items():
            results[label], _ = _run_experiment(n, manhattan,
                                                seed=500 + n)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, n in EXPERIMENTS.items():
        for res in results[label]:
            rows.append([
                label, res["method"], res["nc"],
                f"{res['de_base']:.1f}", f"{res['de_theory']:.1f}",
                f"{res['throughput']:.1%}",
            ])
    print_table(
        "Table III: H2 ground-state energy, PG vs QuCP+PG",
        ["exp", "method", "nc", "dE_base %", "dE_theory %",
         "throughput"],
        rows)

    expected_throughput = {8: 32 / 65, 10: 40 / 65, 12: 48 / 65}
    for label, n in EXPERIMENTS.items():
        pg, par = results[label]
        # Exact qubit arithmetic: 2 qubits/circuit over 65 qubits.
        assert pg["throughput"] == 2 / 65                    # 3.1%
        assert par["throughput"] == expected_throughput[n]
        assert par["nc"] == 2 * n
        # Paper keeps every error under 10%; parallel is noisier but
        # stays usable.
        assert par["de_theory"] < 10.0
        assert pg["de_theory"] < 10.0


def test_fig5_energy_series(benchmark, manhattan):
    """Fig. 5: the scanned energy curves for the 12-parameter case."""
    def run():
        out, ideal_energies = _run_experiment(12, manhattan, seed=512)
        return out, ideal_energies

    (pg, par), ideal_energies = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)[0:2]
    thetas = np.linspace(-np.pi, np.pi, 12)
    rows = [
        [f"{t:.2f}", f"{i:.4f}", f"{p:.4f}", f"{q:.4f}"]
        for t, i, p, q in zip(thetas, ideal_energies, pg["energies"],
                              par["energies"])
    ]
    print_table("Fig. 5c: energy vs theta (12 parameters)",
                ["theta", "ideal", "PG", "QuCP+PG (nc=24)"], rows)

    # The noisy curves track the ideal one: the minimizing theta agrees
    # to within one grid step.
    ideal_arg = int(np.argmin(ideal_energies))
    assert abs(int(np.argmin(pg["energies"])) - ideal_arg) <= 1
    assert abs(int(np.argmin(par["energies"])) - ideal_arg) <= 1

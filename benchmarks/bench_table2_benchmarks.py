"""Table II — the benchmark suite.

Regenerates the paper's benchmark-information table from the workload
registry and asserts the counts match the published numbers exactly.
"""

from conftest import print_table

from repro.sim import ideal_probabilities
from repro.workloads import TABLE_II, all_workloads


def test_table2_benchmark_info(benchmark):
    """Qubits / gates / CX / output type for all 8 benchmarks."""

    def build():
        rows = []
        for w in all_workloads():
            qc = w.circuit(measured=False)
            n_outcomes = len(ideal_probabilities(w.circuit()))
            rows.append([w.name, qc.num_qubits, qc.size(), qc.num_cx(),
                         "1" if n_outcomes == 1 else "dist"])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print_table("Table II: benchmarks",
                ["benchmark", "qubits", "gates", "CX", "result"], rows)

    for name, qubits, gates, cx, result in rows:
        exp_q, exp_g, exp_cx, exp_r = TABLE_II[name]
        assert (qubits, gates, cx, result) == (exp_q, exp_g, exp_cx,
                                               exp_r), name

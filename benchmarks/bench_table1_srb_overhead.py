"""Table I — overhead of SRB crosstalk characterization.

Counts the CNOT pairs (device links), packs the one-hop SRB experiments
into conflict-free groups, and applies the paper's job arithmetic
(3 job types x 5 seeds x groups).  The link counts match the paper
exactly (28 / 72).  Our strict separation criterion yields more groups
than the paper's 9 / 11 (whose packing rule is unpublished and provably
weaker — the Toronto conflict graph contains a 13-clique); the paper's
row is printed alongside for comparison.
"""

from conftest import print_table

from repro.characterization import srb_job_count, srb_overhead_report

#: The paper's Table I rows: (qubits, 1-hop pairs, groups, seeds, jobs).
PAPER_TABLE_I = {
    "ibm_toronto": (27, 28, 9, 5, 135),
    "ibm_manhattan": (65, 72, 11, 5, 165),
}


def test_table1_srb_overhead(benchmark, toronto, manhattan):
    """SRB cost rows for Toronto and Manhattan."""
    devices = (toronto, manhattan)
    reports = benchmark.pedantic(
        lambda: [srb_overhead_report(d.name, d.coupling) for d in devices],
        rounds=1, iterations=1)

    rows = []
    for rep in reports:
        p_q, p_pairs, p_groups, p_seeds, p_jobs = PAPER_TABLE_I[rep.chip]
        rows.append([rep.chip, rep.num_qubits, rep.one_hop_pairs,
                     rep.groups, rep.seeds, rep.jobs,
                     f"(paper: {p_groups} groups, {p_jobs} jobs)"])
    print_table(
        "Table I: SRB overhead",
        ["chip", "qubits", "1-hop pairs", "groups", "seeds", "jobs",
         "reference"],
        rows)

    by_name = {r.chip: r for r in reports}
    # Link counts match the paper exactly.
    assert by_name["ibm_toronto"].one_hop_pairs == 28
    assert by_name["ibm_manhattan"].one_hop_pairs == 72
    # Job arithmetic matches the paper's formula given their group counts.
    assert srb_job_count(9, seeds=5) == 135
    assert srb_job_count(11, seeds=5) == 165
    # Shape: the bigger chip costs more jobs, and both are >> 1 job.
    assert (by_name["ibm_manhattan"].jobs
            > by_name["ibm_toronto"].jobs > 50)

"""QAOA MaxCut with a parallel angle grid.

The paper's conclusion: parallel circuit execution is "a key enabler for
quantum algorithms requiring parallel sub-problem executions".  QAOA's
angle search is exactly that — every (gamma, beta) candidate is an
independent circuit.  This example evaluates a whole p=1 grid for MaxCut
on a 4-cycle in a single hardware job on IBM Q 65 Manhattan.

Run:  python examples/qaoa_maxcut.py
"""

import os

import networkx as nx

import repro
from repro.vqe import (
    max_cut_value,
    run_qaoa_grid_ideal,
    run_qaoa_grid_parallel,
)

#: CI smoke settings (REPRO_FAST=1): coarser grid, fewer shots.
FAST = bool(os.environ.get("REPRO_FAST"))


def main() -> None:
    # A triangle keeps the 16-program parallel grid at 48/65 qubits
    # (73.8% -- the paper's largest packing regime).
    graph = nx.complete_graph(3)
    optimum = max_cut_value(graph)
    print(f"graph: triangle (K3), exact MaxCut = {optimum:g}")

    resolution = 3 if FAST else 4
    ideal = run_qaoa_grid_ideal(graph, resolution=resolution)
    g_i, b_i, cut_i = ideal.best
    print(f"\nideal grid ({resolution ** 2} points): best cut "
          f"{cut_i:.3f} at gamma={g_i:.2f}, beta={b_i:.2f} "
          f"(ratio {ideal.approximation_ratio(graph):.2f})")

    device = repro.provider().device("ibm_manhattan")
    noisy = run_qaoa_grid_parallel(graph, device, resolution=resolution,
                                   shots=1024 if FAST else 4096, seed=5)
    g_n, b_n, cut_n = noisy.best
    print(f"QuCP parallel grid: {noisy.num_simultaneous} circuits in one "
          f"job, throughput {noisy.throughput:.1%}")
    print(f"  best cut {cut_n:.3f} at gamma={g_n:.2f}, beta={b_n:.2f} "
          f"(ratio {noisy.approximation_ratio(graph):.2f})")

    print(f"\nAll {resolution ** 2} angle evaluations cost one queue "
          f"slot instead of {resolution ** 2} — the speedup the paper's "
          "conclusion anticipates.")


if __name__ == "__main__":
    main()

"""VQE for molecular H2 with parallel measurement execution (Sec. IV-C).

Estimates the H2 ground-state energy at 0.735 angstroms by scanning the
tied ansatz parameter.  Each scan point needs two measurement circuits
(the {II, IZ, ZI, ZZ} group and the {XX} group); QuCP runs *all* of them
simultaneously on IBM Q 65 Manhattan, pushing throughput from 3.1% to
~74% with a modest accuracy cost.

Run:  python examples/vqe_h2.py
"""

import os

import numpy as np

import repro
from repro.vqe import (
    group_commuting_terms,
    h2_hamiltonian,
    relative_error_percent,
    run_vqe_scan_ideal,
    run_vqe_scan_independent,
    run_vqe_scan_parallel,
)

#: CI smoke settings (REPRO_FAST=1): fewer scan points, fewer shots.
FAST = bool(os.environ.get("REPRO_FAST"))


def main() -> None:
    hamiltonian = h2_hamiltonian()
    exact = hamiltonian.ground_energy()
    groups = group_commuting_terms(hamiltonian)
    print("H2 @ 0.735 A, parity mapping:",
          [t.label for t, _ in hamiltonian])
    print("commuting groups:",
          [[t.label for t, _ in g.terms] for g in groups])
    print(f"exact ground energy (SciPy eigensolver): {exact:.6f} Ha\n")

    device = repro.provider().device("ibm_manhattan")
    thetas = np.linspace(-np.pi, np.pi, 6 if FAST else 12)
    shots = 2048 if FAST else 8192

    ideal = run_vqe_scan_ideal(thetas)
    parallel = run_vqe_scan_parallel(thetas, device, shots=shots, seed=33)
    independent = run_vqe_scan_independent(thetas, device, shots=shots,
                                           seed=33)

    print(f"{'method':>10} | {'n_circ':>6} | {'throughput':>10} | "
          f"{'E_min':>9} | {'dE_theory':>9}")
    print("-" * 58)
    for result in (ideal, independent, parallel):
        n_circ = (result.num_simultaneous
                  if result.method == "QuCP+PG" else 1)
        de = relative_error_percent(result.minimum_energy, exact)
        print(f"{result.method:>10} | {n_circ:>6} | "
              f"{result.throughput:>9.1%} | "
              f"{result.minimum_energy:>9.4f} | {de:>8.1f}%")

    print("\nQuCP+PG executes every scan point's measurement circuits "
          "in one hardware job — the measurement-overhead reduction the "
          "paper demonstrates.")


if __name__ == "__main__":
    main()

"""Dynamic-circuit teleportation: feed-forward corrections end to end.

Builds the canonical dynamic circuit — one-qubit teleportation whose X/Z
corrections are classically controlled on mid-circuit measurement
outcomes — and walks it through every layer the subsystem adds:

1. the exact tree-walk distribution vs the analytic target,
2. per-shot feed-forward execution (noiseless and noisy),
3. the provider facade (transpile -> schedule -> per-shot execution),
4. static unrolling on a resolvable cousin of the same program.

Run:  python examples/dynamic_teleportation.py
"""

import os

import numpy as np

import repro
from repro.circuits import QuantumCircuit
from repro.sim import dynamic_probabilities, run_dynamic
from repro.transpiler import expand_control_flow, is_statically_resolvable
from repro.workloads import dynamic_circuit

#: CI smoke settings (REPRO_FAST=1): fewer shots.
FAST = bool(os.environ.get("REPRO_FAST"))

THETA = 0.8


def main() -> None:
    shots = 400 if FAST else 2000
    teleport = dynamic_circuit("teleportation")

    print("=== teleportation with feed-forward corrections ===")
    target_p1 = float(np.sin(THETA / 2) ** 2)
    exact = dynamic_probabilities(teleport)
    exact_p1 = sum(p for key, p in exact.items() if key[2] == "1")
    print(f"analytic P(q2=1) = sin^2({THETA}/2) = {target_p1:.4f}")
    print(f"exact tree walk  = {exact_p1:.4f}")

    res = run_dynamic(teleport, shots=shots, seed=7)
    p1 = sum(p for key, p in res.probabilities.items() if key[2] == "1")
    print(f"{shots} feed-forward trajectories: P(q2=1) = {p1:.4f}")

    print("\n=== the same job through the provider facade ===")
    provider = repro.provider()
    job = provider.get_backend("ibm_toronto").run(teleport, shots=shots,
                                                  seed=7)
    result = job.result()
    probs = result.probabilities(0)
    noisy_p1 = sum(p for key, p in probs.items() if key[2] == "1")
    print(f"device: {result.metadata.backend_name}, "
          f"dynamic programs: {result.metadata.dynamic_programs}")
    print(f"noisy P(q2=1) = {noisy_p1:.4f} "
          f"(readout + gate noise pull it toward 0.5)")

    print("\n=== static unrolling on a resolvable cousin ===")
    echo = dynamic_circuit("echo_loop")
    print(f"echo_loop resolvable: {is_statically_resolvable(echo)}; "
          f"teleportation resolvable: "
          f"{is_statically_resolvable(teleport)}")
    flat = expand_control_flow(echo)
    print(f"echo_loop unrolls to {len(flat)} flat instructions "
          f"(ops: {dict(flat.count_ops())})")
    a = run_dynamic(echo, shots=shots, seed=3)
    from repro.sim import run_circuit

    b = run_circuit(flat, shots=shots, seed=3)
    print(f"unrolled-vs-dynamic counts identical under one seed: "
          f"{a.counts == b.counts}")

    print("\n=== repeat-until-success: bounded while loop ===")
    rus = dynamic_circuit("repeat_until_success")
    probs = dynamic_probabilities(rus)
    p_success = sum(p for key, p in probs.items() if key[1] == "1")
    print(f"P(success after <=7 coin flips) = {p_success:.6f} "
          f"(analytic 1 - 2^-7 = {1 - 2 ** -7:.6f})")


if __name__ == "__main__":
    main()

"""Stacking error suppression on a parallel workload.

Combines three techniques the paper discusses on one QuCP parallel job,
submitted twice through the provider facade (same partitions, same
seed, with and without DD):

1. QuCP partition selection (crosstalk avoidance, no SRB),
2. dynamical decoupling in the idle windows of the ALAP schedule
   (a custom ``transpiler_fn`` passed straight through ``run``),
3. tensored readout error mitigation per partition.

Run:  python examples/error_suppression_stack.py
"""

import repro
from repro.core import jensen_shannon_divergence, qucp_allocate
from repro.mitigation import calibrate_readout
from repro.transpiler import insert_dd_sequences, transpile_for_partition
from repro.workloads import workload


def main() -> None:
    provider = repro.provider()
    device = provider.device("ibm_toronto")
    backend = provider.simulator(device)
    circuits = [workload(n).circuit() for n in ("qec", "var", "bell")]
    # One shared allocation, so both runs use identical partitions.
    allocation = qucp_allocate(circuits, device)

    def dd_transpiler(circuit, dev, alloc):
        result = transpile_for_partition(circuit, dev, alloc.partition,
                                         schedule=True)
        result.circuit = insert_dd_sequences(
            result.circuit, dev.calibration.gate_duration)
        return result

    # Both jobs queue immediately; results are collected below.
    plain_job = backend.run(allocation, shots=0, seed=21)
    stacked_job = backend.run(allocation, shots=0, seed=21,
                              transpiler_fn=dd_transpiler)
    plain, stacked = plain_job.result(), stacked_job.result()

    print(f"{'program':>12} | {'raw JSD':>8} | {'DD':>8} | "
          f"{'DD+readout':>10}")
    print("-" * 50)
    for raw_out, dd_out in zip(plain.outcomes[0], stacked.outcomes[0]):
        mitigator = calibrate_readout(
            device, dd_out.allocation.partition, shots=0)
        mitigated = mitigator.apply(dd_out.result.probabilities)
        jsd_raw = raw_out.jsd()
        jsd_dd = dd_out.jsd()
        jsd_full = jensen_shannon_divergence(mitigated, dd_out.ideal)
        name = raw_out.allocation.circuit.name
        print(f"{name:>12} | {jsd_raw:>8.4f} | {jsd_dd:>8.4f} | "
              f"{jsd_full:>10.4f}")

    print("\nEach program runs simultaneously on its QuCP partition; DD "
          "echoes idle drift; the confusion-matrix inverse repairs "
          "readout bias.")


if __name__ == "__main__":
    main()

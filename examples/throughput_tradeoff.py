"""Throughput vs fidelity: the paper's Sec. IV-B experiment.

Sweeps the fidelity threshold on IBM Q 65 Manhattan, letting QuCP decide
how many copies of a benchmark run simultaneously, then measures the
average PST at each operating point.  Reproduces the shape of Fig. 4:
throughput climbs from 7.7% to 46.2% while fidelity degrades, with a
cliff once partitions get crowded.

Run:  python examples/throughput_tradeoff.py
"""

import numpy as np

from repro.core import execute_allocation, select_parallel_count
from repro.hardware import ibm_manhattan
from repro.workloads import workload


def main() -> None:
    device = ibm_manhattan()
    bench = workload("alu-v0_27")
    circuit = bench.circuit()
    print(f"benchmark: {bench.name} ({bench.num_qubits} qubits, "
          f"{bench.num_cx} CX)")
    print(f"device: {device.name} ({device.num_qubits} qubits)\n")

    print(f"{'threshold':>9} | {'copies':>6} | {'throughput':>10} | "
          f"{'avg PST':>8}")
    print("-" * 45)
    for threshold in (0.0, 0.1, 0.2, 0.4, 0.7, 1.0, 2.0):
        decision = select_parallel_count(circuit, device,
                                         threshold=threshold,
                                         max_copies=6)
        outcomes = execute_allocation(decision.allocation, shots=4096,
                                      seed=13)
        avg_pst = float(np.mean([o.pst() for o in outcomes]))
        print(f"{threshold:>9.2f} | {decision.num_parallel:>6} | "
              f"{decision.throughput:>9.1%} | {avg_pst:>8.3f}")

    print("\nRead: higher thresholds admit more simultaneous copies "
          "(more throughput, shorter queue) at the cost of fidelity.")


if __name__ == "__main__":
    main()

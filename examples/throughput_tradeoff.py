"""Throughput vs fidelity: the paper's Sec. IV-B experiment, on the
provider facade.

Part 1 sweeps the fidelity threshold on IBM Q 65 Manhattan, letting the
registry-served QuCP strategy decide how many copies of a benchmark run
simultaneously, then measures the average PST at each operating point —
the shape of Fig. 4: throughput climbs from 7.7% to 46.2% while fidelity
degrades, with a cliff once partitions get crowded.

Part 2 runs the same knob at the *service* level: a Poisson stream of
submissions through a scheduler-backed ``CloudBackend`` per threshold,
showing how the threshold trades mean turnaround against jobs
dispatched.  ``execute=False`` stops each job after the discrete-event
schedule — part 2 studies the queue, not the simulated counts.

Run:  python examples/throughput_tradeoff.py
"""

import os

import numpy as np

import repro
from repro.core import get_allocator, select_parallel_count
from repro.workloads import synthesize_traffic, workload

FAST = bool(os.environ.get("REPRO_FAST"))


def main() -> None:
    provider = repro.provider()
    device = provider.device("ibm_manhattan")
    simulator = provider.simulator(device)
    bench = workload("alu-v0_27")
    circuit = bench.circuit()
    allocator = get_allocator("qucp")  # the registry-served strategy
    print(f"benchmark: {bench.name} ({bench.num_qubits} qubits, "
          f"{bench.num_cx} CX)")
    print(f"device: {device.name} ({device.num_qubits} qubits)")
    print(f"allocator: {allocator.method_label()}\n")

    thresholds = ((0.0, 0.4, 2.0) if FAST
                  else (0.0, 0.1, 0.2, 0.4, 0.7, 1.0, 2.0))
    print(f"{'threshold':>9} | {'copies':>6} | {'throughput':>10} | "
          f"{'avg PST':>8}")
    print("-" * 45)
    for threshold in thresholds:
        decision = select_parallel_count(circuit, device,
                                         threshold=threshold,
                                         max_copies=6,
                                         allocator=allocator)
        result = simulator.run(decision.allocation,
                               shots=1024 if FAST else 4096,
                               seed=13).result()
        avg_pst = float(np.mean([p.pst for p in result.programs]))
        print(f"{threshold:>9.2f} | {decision.num_parallel:>6} | "
              f"{decision.throughput:>9.1%} | {avg_pst:>8.3f}")

    print("\nRead: higher thresholds admit more simultaneous copies "
          "(more throughput, shorter queue) at the cost of fidelity.\n")

    # -- the same knob as a cloud service ------------------------------
    subs = synthesize_traffic(8 if FAST else 12, pattern="poisson",
                              mean_interarrival_ns=2e5,
                              mix="heavy_tail", seed=7)
    print(f"service view: {len(subs)} Poisson submissions on "
          f"{device.name}")
    print(f"{'service':>14} | {'jobs':>4} | {'makespan(ms)':>12} | "
          f"{'turnaround(ms)':>14}")
    print("-" * 55)

    def queue_stats(threshold, max_batch_size=None):
        backend = provider.backend(device,
                                   allocator=allocator,
                                   fidelity_threshold=threshold,
                                   max_batch_size=max_batch_size)
        return backend.run(subs, execute=False).result().schedule

    serial = queue_stats(0.0, max_batch_size=1)
    print(f"{'serial':>14} | {serial.num_jobs:>4} | "
          f"{serial.makespan_ns / 1e6:>12.2f} | "
          f"{serial.mean_turnaround_ns / 1e6:>14.2f}")
    for threshold in (0.0, 0.3, 1.0):
        out = queue_stats(threshold)
        print(f"{f'th={threshold:g}':>14} | {out.num_jobs:>4} | "
              f"{out.makespan_ns / 1e6:>12.2f} | "
              f"{out.mean_turnaround_ns / 1e6:>14.2f}")

    print("\nRead: the batching service amortizes per-job overhead; "
          "max_batch_size=1 is strict serial FIFO service, and higher "
          "thresholds pack more programs per job.")


if __name__ == "__main__":
    main()

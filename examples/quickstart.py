"""Quickstart: run two programs in parallel on a simulated IBM chip.

Builds two small circuits, lets QuCP pick crosstalk-safe partitions on
IBM Q 27 Toronto, executes them simultaneously under the device noise
model, and prints fidelity metrics — the core loop of the paper in ~40
lines.

Run:  python examples/quickstart.py
"""

from repro.circuits import ghz_circuit
from repro.core import execute_allocation, qucp_allocate
from repro.hardware import ibm_toronto
from repro.workloads import workload


def main() -> None:
    device = ibm_toronto()
    print(f"device: {device.name} with {device.num_qubits} qubits, "
          f"{len(device.coupling.edges)} links")

    # Two workloads: a deterministic adder and a GHZ state.
    programs = [
        workload("adder").circuit(),
        ghz_circuit(4).measure_all(),
    ]

    # QuCP allocates a partition per program, steering away from
    # crosstalk-prone neighbourhoods without any SRB characterization.
    allocation = qucp_allocate(programs, device, sigma=4.0)
    print(f"\nallocation ({allocation.method}):")
    for alloc in sorted(allocation.allocations, key=lambda a: a.index):
        print(f"  program {alloc.index} ({alloc.circuit.name}) -> "
              f"qubits {alloc.partition}  EFS={alloc.efs:.4f}")
    print(f"hardware throughput: {allocation.throughput():.1%}")

    # Transpile + execute both programs simultaneously (with crosstalk).
    outcomes = execute_allocation(allocation, shots=8192, seed=7)
    print("\nresults:")
    for out in outcomes:
        top = sorted(out.result.counts.items(), key=lambda kv: -kv[1])[:3]
        print(f"  {out.allocation.circuit.name}: "
              f"PST={out.pst():.3f} JSD={out.jsd():.3f} top={top}")


if __name__ == "__main__":
    main()

"""Quickstart: run two programs in parallel on a simulated IBM chip.

Builds two small circuits, submits them to the provider facade's
IBM Q 27 Toronto backend, and prints placements and fidelity metrics —
the core loop of the paper in ~40 lines.  The backend allocates
crosstalk-safe partitions with QuCP, transpiles through the shared
compile cache, and simulates both programs simultaneously under the
device noise model; ``run`` returns an async ``Job`` whose ``result()``
is typed and JSON-serializable.

Run:  python examples/quickstart.py
"""

import repro
from repro.circuits import ghz_circuit
from repro.workloads import workload


def main() -> None:
    provider = repro.provider()
    backend = provider.backend("ibm_toronto")
    device = backend.devices[0]
    print(f"device: {device.name} with {device.num_qubits} qubits, "
          f"{len(device.coupling.edges)} links")

    # Two workloads: a deterministic adder and a GHZ state.
    programs = [
        workload("adder").circuit(),
        ghz_circuit(4).measure_all(),
    ]

    # Submit asynchronously; the backend's QuCP allocator picks
    # crosstalk-safe partitions without any SRB characterization.
    job = backend.run(programs, shots=8192, seed=7)
    print(f"\nsubmitted {job.job_id}: {job.status().value}")

    result = job.result()  # blocks until the job completes
    print(f"allocation ({result.metadata.method}):")
    for prog in result.programs:
        print(f"  program {prog.index} ({prog.circuit_name}) -> "
              f"qubits {prog.partition}  EFS={prog.efs:.4f}")
    print(f"hardware throughput: {result.metadata.throughput:.1%}")

    print("\nresults:")
    for prog in result.programs:
        top = sorted(prog.counts.items(), key=lambda kv: -kv[1])[:3]
        print(f"  {prog.circuit_name}: "
              f"PST={prog.pst:.3f} JSD={prog.jsd:.3f} top={top}")


if __name__ == "__main__":
    main()

"""Crosstalk characterization with SRB — and why QuCP skips it.

Runs the simultaneous-randomized-benchmarking campaign on a subset of
IBM Q 27 Toronto's one-hop link pairs, reports the measured crosstalk
ratios against the (hidden) ground truth, and prints the Table-I style
job accounting that makes full characterization so expensive.

Run:  python examples/crosstalk_characterization.py
"""

import os

import repro
from repro.characterization import (
    run_srb_experiment,
    srb_experiments,
    srb_overhead_report,
)

#: CI smoke settings (REPRO_FAST=1): fewer pairs, fewer shots.
FAST = bool(os.environ.get("REPRO_FAST"))


def main() -> None:
    provider = repro.provider()
    device = provider.device("ibm_toronto")

    print("=== SRB overhead (paper Table I) ===")
    for dev in (device, provider.device("ibm_manhattan")):
        rep = srb_overhead_report(dev.name, dev.coupling)
        print(f"{rep.chip:>15}: {rep.num_qubits} qubits, "
              f"{rep.one_hop_pairs} CNOT pairs, {rep.groups} groups, "
              f"{rep.jobs} jobs at {rep.seeds} seeds")

    n_pairs = 2 if FAST else 6
    print(f"\n=== characterizing {n_pairs} one-hop pairs on Toronto ===")
    experiments = srb_experiments(device.coupling)[:n_pairs]
    print(f"{'pair':>22} | {'EPC alone':>9} | {'EPC simul':>9} | "
          f"{'ratio':>5} | {'truth':>5}")
    print("-" * 64)
    for exp in experiments:
        res = run_srb_experiment(device, exp, seeds=2,
                                 shots=512 if FAST else 2048,
                                 lengths=(1, 8, 20, 40))
        truth = device.crosstalk.factor(exp.link_a, exp.link_b)
        label = f"{exp.link_a}x{exp.link_b}"
        print(f"{label:>22} | {res.epc_a:>9.4f} | "
              f"{res.epc_a_simultaneous:>9.4f} | {res.max_ratio:>5.2f} | "
              f"{truth:>5.2f}")

    print("\nQuCP replaces this whole campaign with a single topology-"
          "derived parameter (sigma = 4).")


if __name__ == "__main__":
    main()

"""Zero-noise extrapolation with parallel folded circuits (Sec. IV-D).

For each benchmark, compares three flows on IBM Q 65 Manhattan:

- Baseline: one unmitigated run on the best partition;
- QuCP+ZNE: the four folded circuits (scale 1.0-2.5) run simultaneously,
  then extrapolate to zero noise;
- ZNE: the folded circuits run one-by-one (4x the queue time).

Reproduces the shape of Fig. 6: mitigation beats the baseline, and the
parallel variant gets most of the benefit at a fraction of the runtime.

Run:  python examples/zne_mitigation.py
"""

import os

import repro
from repro.mitigation import run_zne_comparison
from repro.workloads import workload

#: CI smoke settings (REPRO_FAST=1): fewer benchmarks, fewer shots.
FAST = bool(os.environ.get("REPRO_FAST"))


def main() -> None:
    device = repro.provider().device("ibm_manhattan")
    names = ["adder", "lin"] if FAST else ["adder", "4mod", "fred", "lin"]

    print(f"{'benchmark':>12} | {'baseline':>8} | {'QuCP+ZNE':>8} | "
          f"{'ZNE':>8} | {'parallel thr':>12}")
    print("-" * 62)
    improvements = []
    for name in names:
        circuit = workload(name).circuit()
        cmp = run_zne_comparison(circuit, device,
                                 shots=2048 if FAST else 8192, seed=77)
        print(f"{cmp.name:>12} | {cmp.baseline_error:>8.3f} | "
              f"{cmp.qucp_zne_error:>8.3f} | {cmp.zne_error:>8.3f} | "
              f"{cmp.qucp_zne_throughput:>11.1%}")
        if cmp.qucp_zne_error > 0:
            improvements.append(cmp.baseline_error / cmp.qucp_zne_error)

    if improvements:
        avg = sum(improvements) / len(improvements)
        print(f"\nQuCP+ZNE error reduction vs baseline: {avg:.1f}x "
              f"average (paper reports ~2x average, 11x best case)")


if __name__ == "__main__":
    main()

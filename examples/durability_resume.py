"""Durability and fault tolerance: kill the provider, keep the jobs.

The service facade persists every submission, status transition, and
completed result into a SQLite job store (``store_path=`` /
``REPRO_JOB_STORE``), so the provider process is disposable:

Part 1 runs a job with a store attached, throws the provider away, and
shows a *fresh* provider on the same store re-serving the completed
result bit-identically — then simulates a crash (a job killed while
RUNNING) and shows the restart re-queueing it from its stored replay
spec and driving it to DONE.

Part 2 injects a deterministic device outage into a two-device fleet
with a committed :class:`~repro.core.FaultPlan`: the dead device's
in-flight batch re-queues to the survivor, everything still completes,
and — because the plan is pure data — a second run replays the
identical schedule.

Part 3 shows the :class:`~repro.service.RetryPolicy`'s deterministic
backoff schedule (same job id, same delays, every run).

Writes a summary to ``CHAOS_resume.json`` (uploaded as a CI artifact
by the chaos job).

Run:  python examples/durability_resume.py
"""

import json
import os
import tempfile

import repro
from repro.circuits import ghz_circuit
from repro.core import FaultPlan
from repro.service import JobStore, QuantumProvider, RetryPolicy
from repro.workloads import synthesize_traffic

FAST = bool(os.environ.get("REPRO_FAST"))


def main() -> None:
    summary = {}
    workdir = tempfile.mkdtemp(prefix="repro-durability-")
    store_path = os.path.join(workdir, "jobs.sqlite")
    shots = 256 if FAST else 1024

    # ------------------------------------------------------------------
    print("=== Part 1: durable jobs survive the provider ===\n")
    provider = repro.provider(store_path=store_path)
    backend = provider.simulator("ibm_toronto")
    circuits = [ghz_circuit(3).measure_all()] * (2 if FAST else 4)
    job = backend.run(circuits, shots=shots, seed=7)
    payload = job.result().to_dict()
    job_id = job.job_id
    print(f"ran {job_id} ({len(circuits)} programs, {shots} shots) "
          f"with store {store_path}")
    trail = [t.status for t in provider.store.transitions(job_id)]
    print(f"stored audit trail: {' -> '.join(trail)}")
    provider.shutdown()
    print("provider shut down (the process could die here)\n")

    restarted = QuantumProvider(store_path=store_path)
    rehydrated = restarted.job(job_id).result().to_dict()
    identical = rehydrated == payload
    print(f"fresh provider re-serves {job_id}: "
          f"bit-identical = {identical}")
    summary["rehydrated_identical"] = identical
    restarted.shutdown()

    # Simulate a crash: rewind the stored status to RUNNING, as if the
    # process had been killed mid-attempt.
    with JobStore(store_path) as store:
        store.record_transition(job_id, "running", attempt=1)
    print(f"simulated crash: {job_id} marked RUNNING in the store")
    resumed_provider = QuantumProvider(store_path=store_path)
    resumed = resumed_provider.job(job_id)
    replayed = resumed.result().to_dict()
    print(f"restart re-queued it from its replay spec: "
          f"status={resumed.status().value}, programs identical = "
          f"{replayed['programs'] == payload['programs']}")
    summary["resumed_status"] = resumed.status().value
    summary["resumed_programs_identical"] = (
        replayed["programs"] == payload["programs"])
    resumed_provider.shutdown()

    # ------------------------------------------------------------------
    print("\n=== Part 2: a committed device outage, replayed ===\n")
    plan = FaultPlan.device_outage("ibm_toronto", start_ns=5e5,
                                   duration_ns=2e6)
    traffic = synthesize_traffic(4 if FAST else 8, pattern="poisson",
                                 mean_interarrival_ns=2e5,
                                 mix="uniform", seed=5)
    schedules = []
    for attempt in range(2):
        prov = QuantumProvider()
        fleet = prov.fleet_backend(["ibm_toronto", "ibm_melbourne"],
                                   fidelity_threshold=1.0,
                                   fault_plan=plan)
        result = fleet.run(traffic, shots=shots, seed=2).result()
        schedules.append(result.to_dict()["schedule"])
        prov.shutdown()
    sched = schedules[0]
    print(f"outage at t=0.5ms for 2ms on ibm_toronto: "
          f"{sched['outages']} outage(s), re-queued programs "
          f"{sched['requeued']}, {len(traffic)} submissions, "
          f"{len(sched['completion_ns'])} completed")
    replay_identical = schedules[0] == schedules[1]
    print(f"second run replays the identical schedule: "
          f"{replay_identical}")
    summary["outages"] = sched["outages"]
    summary["requeued"] = sched["requeued"]
    summary["completed"] = len(sched["completion_ns"])
    summary["replay_identical"] = replay_identical

    # ------------------------------------------------------------------
    print("\n=== Part 3: deterministic retry backoff ===\n")
    policy = RetryPolicy(max_attempts=4, backoff_s=0.05, jitter=0.1,
                         seed=0)
    delays = [policy.delay_s(job_id, k) for k in (1, 2, 3)]
    print(f"retry delays for {job_id}: "
          + ", ".join(f"{d * 1e3:.1f}ms" for d in delays)
          + "  (same every run — chaos tests assert exact traces)")
    summary["retry_delays_s"] = delays

    out = os.path.join(os.getcwd(), "CHAOS_resume.json")
    with open(out, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
    print(f"\nwrote {out}")

    ok = (summary["rehydrated_identical"]
          and summary["resumed_status"] == "done"
          and summary["resumed_programs_identical"]
          and summary["replay_identical"]
          and summary["completed"] == len(traffic))
    print("durability demo:", "OK" if ok else "FAILED")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()

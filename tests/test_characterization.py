"""Unit tests for RB, SRB, and the Table-I overhead accounting."""

import numpy as np
import pytest

from repro.characterization import (
    fit_rb_decay,
    group_experiments,
    rb_sequence,
    rb_survival,
    run_rb,
    run_srb_experiment,
    srb_experiments,
    srb_job_count,
    srb_overhead_report,
)
from repro.sim import circuit_unitary


class TestRBSequences:
    def test_sequence_composes_to_identity(self):
        rng = np.random.default_rng(0)
        for length in (1, 3, 8):
            qc = rb_sequence(2, length, rng)
            u = circuit_unitary(qc.without_measurements())
            phase = u[0, 0] / abs(u[0, 0])
            assert np.allclose(u / phase, np.eye(4), atol=1e-8)

    def test_sequence_measures_all(self):
        rng = np.random.default_rng(1)
        qc = rb_sequence(1, 4, rng)
        assert qc.count_ops()["measure"] == 1

    def test_survival_reads_zero_string(self):
        assert rb_survival({"00": 0.8, "01": 0.2}) == 0.8
        assert rb_survival({}) == 0.0


class TestDecayFit:
    def test_exact_exponential_recovered(self):
        alpha = 0.97
        lengths = [1, 5, 10, 20, 40, 60]
        survival = [0.75 * alpha ** m + 0.25 for m in lengths]
        fit_alpha, epc, amp, base = fit_rb_decay(lengths, survival, 2)
        assert fit_alpha == pytest.approx(alpha, abs=1e-6)
        assert epc == pytest.approx(0.75 * (1 - alpha), abs=1e-6)

    def test_noisy_fit_reasonable(self):
        rng = np.random.default_rng(7)
        alpha = 0.95
        lengths = [1, 4, 8, 16, 28, 44, 64]
        survival = [
            0.75 * alpha ** m + 0.25 + rng.normal(0, 0.01)
            for m in lengths
        ]
        fit_alpha, _, _, _ = fit_rb_decay(lengths, survival, 2)
        assert fit_alpha == pytest.approx(alpha, abs=0.02)


class TestRunRB:
    def test_epc_tracks_link_quality(self, toronto):
        """RB on a bad link reports a larger EPC than on a good link."""
        edges = sorted(toronto.calibration.twoq_error.items(),
                       key=lambda kv: kv[1])
        good_edge = edges[0][0]
        bad_edge = edges[-1][0]
        good = run_rb(toronto, good_edge, lengths=(1, 8, 20, 40),
                      seeds=2, shots=0)
        bad = run_rb(toronto, bad_edge, lengths=(1, 8, 20, 40),
                     seeds=2, shots=0)
        assert bad.epc > good.epc

    def test_epc_positive_and_small(self, toronto):
        res = run_rb(toronto, (0, 1), lengths=(1, 8, 20), seeds=2,
                     shots=0)
        assert 0.0 < res.epc < 0.2


class TestSRB:
    def test_strong_pair_detected(self, toronto):
        strong = next(
            e for e in srb_experiments(toronto.coupling)
            if toronto.crosstalk.factor(e.link_a, e.link_b) >= 2.5)
        res = run_srb_experiment(toronto, strong, seeds=2, shots=0,
                                 lengths=(1, 8, 20, 40))
        assert res.max_ratio > 1.7

    def test_mild_pair_not_flagged(self, toronto):
        mild = next(
            e for e in srb_experiments(toronto.coupling)
            if toronto.crosstalk.factor(e.link_a, e.link_b) <= 1.2)
        res = run_srb_experiment(toronto, mild, seeds=2, shots=0,
                                 lengths=(1, 8, 20, 40))
        assert res.max_ratio < 1.7


class TestScheduling:
    def test_experiments_are_one_hop_pairs(self, toronto):
        exps = srb_experiments(toronto.coupling)
        for e in exps:
            assert toronto.coupling.pair_distance(e.link_a, e.link_b) == 1

    def test_groups_are_conflict_free(self, toronto):
        groups = group_experiments(toronto.coupling)
        for group in groups:
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    dists = [
                        toronto.coupling.pair_distance(x, y)
                        for x in (a.link_a, a.link_b)
                        for y in (b.link_a, b.link_b)
                    ]
                    assert min(dists) > 1

    def test_groups_cover_all_experiments(self, toronto):
        exps = srb_experiments(toronto.coupling)
        groups = group_experiments(toronto.coupling)
        assert sum(len(g) for g in groups) == len(exps)

    def test_job_count_formula(self):
        # The paper's arithmetic: groups x seeds x 3 job types.
        assert srb_job_count(9, seeds=5) == 135
        assert srb_job_count(11, seeds=5) == 165

    def test_overhead_report_matches_links(self, toronto, manhattan):
        rep_t = srb_overhead_report("t", toronto.coupling)
        rep_m = srb_overhead_report("m", manhattan.coupling)
        assert rep_t.one_hop_pairs == 28   # paper Table I
        assert rep_m.one_hop_pairs == 72   # paper Table I
        assert rep_m.groups >= rep_t.groups or rep_m.jobs > rep_t.jobs

    def test_jobs_grow_with_chip_size(self, toronto, manhattan):
        rep_t = srb_overhead_report("t", toronto.coupling)
        rep_m = srb_overhead_report("m", manhattan.coupling)
        assert rep_m.jobs > rep_t.jobs > 50

"""Unit tests for the device ASCII renderer."""

from repro.hardware import render_device, render_partitions


class TestRenderDevice:
    def test_header_contains_name(self, toronto):
        text = render_device(toronto)
        assert "ibm_toronto" in text
        assert "27 qubits" in text

    def test_all_qubits_present(self, toronto):
        import re

        text = render_device(toronto)
        for q in range(27):
            assert re.search(rf"(^|\s|\[)\s*{q}(\]|\s|$)", text), q

    def test_highlight_brackets(self, toronto):
        text = render_device(toronto, highlight=(0, 1))
        assert "[ 0]A" in text
        assert "[ 1]A" in text

    def test_partition_letters(self, toronto):
        text = render_partitions(toronto, [(0, 1), (23, 24)])
        assert "[ 0]A" in text
        assert "[23]B" in text

    def test_legend_lists_partitions(self, toronto):
        text = render_partitions(toronto, [(0, 1)])
        assert "A=(0, 1)" in text

    def test_melbourne_layout(self, melbourne):
        text = render_device(melbourne)
        lines = text.splitlines()
        # Ladder: two qubit rows below the header.
        qubit_rows = [ln for ln in lines if any(ch.isdigit()
                                                for ch in ln)]
        assert len(qubit_rows) >= 2

    def test_generic_fallback_for_other_sizes(self, line5):
        text = render_device(line5)
        assert "linear5" in text

"""Admission-control unit tests: token buckets, quotas, the cost
model, and the controller's accept/shed/reject decisions — all pure
functions of the virtual arrival stream."""

import pytest

from repro.hardware import DeviceFleet, linear_device
from repro.service import (
    PRIORITY_CLASSES,
    AdmissionController,
    AdmissionPolicy,
    CostModel,
    JobError,
    OverloadedError,
    QuotaExceededError,
    TokenBucket,
    UserQuota,
)
from repro.workloads import workload


@pytest.fixture(scope="module")
def fleet():
    return DeviceFleet([linear_device(5, seed=0),
                        linear_device(6, seed=1)])


@pytest.fixture(scope="module")
def bell():
    return workload("bell").circuit()


def controller(fleet, **policy_kwargs):
    policy_kwargs.setdefault("quotas", {
        "alice": UserQuota(rate_per_s=1000.0, burst=4,
                           priority_class="interactive"),
        "bob": UserQuota(rate_per_s=1000.0, burst=4,
                         priority_class="best_effort"),
    })
    return AdmissionController(AdmissionPolicy(**policy_kwargs),
                               CostModel(fleet))


class TestTokenBucket:
    def test_burst_then_refusal_with_retry_hint(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=2)
        assert bucket.try_take(0.0) == (True, None)
        assert bucket.try_take(0.0) == (True, None)
        ok, retry = bucket.try_take(0.0)
        assert not ok
        # 1 token at 1000/s = 1 ms = 1e6 ns away.
        assert retry == pytest.approx(1e6)

    def test_refills_on_virtual_time(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=1)
        assert bucket.try_take(0.0)[0]
        assert not bucket.try_take(0.0)[0]
        assert bucket.try_take(1e6)[0]  # exactly one refill later

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=3)
        bucket.try_take(0.0)
        for _ in range(3):
            assert bucket.try_take(1e12)[0]  # capped at burst, not more
        assert not bucket.try_take(1e12)[0]

    def test_oversized_take_is_hopeless(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=2)
        ok, retry = bucket.try_take(0.0, amount=3)
        assert not ok and retry is None

    def test_backwards_time_is_clamped(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=1)
        bucket.try_take(1e9)
        ok, _ = bucket.try_take(0.0)  # out-of-order probe: no refill
        assert not ok

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 1).try_take(0.0, amount=0)


class TestUserQuota:
    def test_priority_mapping(self):
        assert UserQuota(1.0, 1, "interactive").priority \
            == PRIORITY_CLASSES["interactive"]
        assert UserQuota(1.0, 1).priority_class == "batch"

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            UserQuota(1.0, 1, "platinum")

    def test_class_gaps_are_wide(self):
        # Aging promotes one level per interval; the tiers are spaced
        # so promotion across a class takes many intervals.
        levels = sorted(PRIORITY_CLASSES.values())
        assert all(b - a >= 10 for a, b in zip(levels, levels[1:]))


class TestCostModel:
    def test_deterministic_and_memoized(self, fleet, bell):
        cost = CostModel(fleet)
        first = cost.program_ns(bell)
        assert first > 0
        assert cost.program_ns(bell) == first

    def test_job_adds_overhead(self, fleet, bell):
        cost = CostModel(fleet, job_overhead_ns=1e6)
        assert cost.job_ns([bell]) == pytest.approx(
            1e6 + cost.program_ns(bell))
        with pytest.raises(ValueError):
            cost.job_ns([])


class TestAdmissionController:
    def test_accept_carries_class_and_priority(self, fleet, bell):
        ctl = controller(fleet)
        decision = ctl.decide("alice", [bell], 0.0)
        assert decision.admitted and decision.status == "accepted"
        assert decision.priority_class == "interactive"
        assert decision.priority == PRIORITY_CLASSES["interactive"]

    def test_unknown_user_rejected(self, fleet, bell):
        ctl = controller(fleet)
        decision = ctl.decide("mallory", [bell], 0.0)
        assert not decision.admitted and decision.status == "rejected"
        assert decision.retry_after_ns is None  # no quota: hopeless

    def test_default_quota_covers_unknown_users(self, fleet, bell):
        ctl = controller(fleet, default_quota=UserQuota(10.0, 1))
        assert ctl.decide("mallory", [bell], 0.0).admitted

    def test_quota_exhaustion_rejects_with_hint(self, fleet, bell):
        ctl = controller(fleet)
        for _ in range(4):
            assert ctl.decide("alice", [bell], 0.0).admitted
        decision = ctl.decide("alice", [bell], 0.0)
        assert decision.status == "rejected"
        assert decision.retry_after_ns > 0

    def test_depth_backpressure_sheds(self, fleet, bell):
        ctl = controller(fleet, max_queue_depth=2)
        ctl.decide("alice", [bell], 0.0)
        ctl.decide("alice", [bell], 0.0)
        decision = ctl.decide("alice", [bell], 0.0)
        assert decision.status == "shed"
        assert decision.retry_after_ns > 0

    def test_backlog_drains_with_virtual_time(self, fleet, bell):
        ctl = controller(fleet, max_queue_depth=2)
        ctl.decide("alice", [bell], 0.0)
        ctl.decide("alice", [bell], 0.0)
        assert ctl.decide("alice", [bell], 0.0).status == "shed"
        # Far in the virtual future the backlog has drained (and the
        # bucket refilled): the same request is admitted again.
        assert ctl.decide("alice", [bell], 1e10).admitted

    def test_wait_backpressure_sheds(self, fleet, bell):
        ctl = controller(fleet, max_est_wait_ns=1.0)
        # Two devices: the first two jobs start immediately, the third
        # must wait for a virtual server and exceeds the 1 ns limit.
        assert ctl.decide("alice", [bell], 0.0).admitted
        assert ctl.decide("alice", [bell], 0.0).admitted
        assert ctl.decide("alice", [bell], 0.0).status == "shed"

    def test_deadline_shedding(self, fleet, bell):
        ctl = controller(fleet)
        service = ctl.cost.job_ns([bell])
        tight = ctl.decide("alice", [bell], 0.0,
                           deadline_ns=service * 0.5)
        assert tight.status == "shed"
        assert "deadline" in tight.reason
        ok = ctl.decide("alice", [bell], 0.0, deadline_ns=service * 10)
        assert ok.admitted

    def test_errors_are_typed_and_nonretryable(self, fleet, bell):
        ctl = controller(fleet, max_queue_depth=1)
        with pytest.raises(QuotaExceededError) as exc_info:
            ctl.admit("mallory", [bell], 0.0)
        assert isinstance(exc_info.value, JobError)
        ctl.admit("alice", [bell], 0.0)
        with pytest.raises(OverloadedError) as shed_info:
            ctl.admit("alice", [bell], 0.0)
        payload = shed_info.value.to_dict()
        assert payload["status"] == "shed"
        assert payload["retry_after_ns"] is not None

    def test_counters_and_summary_invariant(self, fleet, bell):
        ctl = controller(fleet, max_queue_depth=3)
        outcomes = [ctl.decide("alice" if i % 2 else "bob", [bell],
                               i * 1e4).status
                    for i in range(12)]
        summary = ctl.summary()
        total = summary["total"]
        assert total["accepted"] + total["shed"] + total["rejected"] \
            == len(outcomes)
        assert set(summary["per_class"]) == set(PRIORITY_CLASSES)

    def test_replay_is_bit_identical(self, fleet, bell):
        stream = [("alice" if i % 3 else "bob", i * 2e4)
                  for i in range(30)]

        def run():
            ctl = controller(fleet, max_queue_depth=4)
            return [ctl.decide(u, [bell], t).to_dict()
                    for u, t in stream]

        assert run() == run()

    def test_input_validation(self, fleet, bell):
        ctl = controller(fleet)
        with pytest.raises(ValueError):
            ctl.decide("alice", [], 0.0)
        with pytest.raises(ValueError):
            ctl.decide("alice", [bell], -1.0)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_est_wait_ns=0.0)

"""Unit tests for the synthetic traffic generators."""

import pytest

from repro.workloads import (
    bursty_arrival_times,
    poisson_arrival_times,
    sample_workload_mix,
    synthesize_traffic,
    traffic_rate_sweep,
)


class TestPoissonArrivals:
    def test_starts_at_zero_and_monotone(self):
        times = poisson_arrival_times(50, 1e5, seed=3)
        assert times[0] == 0.0
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_deterministic_under_seed(self):
        assert poisson_arrival_times(10, 1e5, seed=9) == \
            poisson_arrival_times(10, 1e5, seed=9)

    def test_mean_rate_roughly_respected(self):
        times = poisson_arrival_times(2000, 1e5, seed=1)
        mean_gap = times[-1] / (len(times) - 1)
        assert mean_gap == pytest.approx(1e5, rel=0.15)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            poisson_arrival_times(0, 1e5)
        with pytest.raises(ValueError):
            poisson_arrival_times(5, 0.0)


class TestBurstyArrivals:
    def test_bursts_are_tight_and_gaps_wide(self):
        times = bursty_arrival_times(8, burst_size=4, burst_gap_ns=1e7,
                                     intra_gap_ns=1e3, seed=2)
        assert len(times) == 8
        intra = times[3] - times[0]
        gap = times[4] - times[3]
        assert gap > 10 * intra

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bursty_arrival_times(0)
        with pytest.raises(ValueError):
            bursty_arrival_times(4, burst_gap_ns=0.0)


class TestWorkloadMix:
    def test_uniform_covers_suite(self):
        picks = sample_workload_mix(400, mix="uniform", seed=0)
        assert len({w.name for w in picks}) >= 6

    def test_heavy_tail_favors_small_circuits(self):
        picks = sample_workload_mix(400, mix="heavy_tail", seed=0)
        small = sum(1 for w in picks if w.num_qubits == 3)
        large = sum(1 for w in picks if w.num_qubits == 5)
        assert small > 3 * large
        assert large > 0  # the tail exists

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            sample_workload_mix(5, mix="bimodal")


class TestSynthesizeTraffic:
    def test_users_rotate_and_priorities_apply(self):
        subs = synthesize_traffic(
            8, num_users=4, seed=5,
            user_priorities={"user1": 3})
        assert [s.user for s in subs[:4]] == [
            "user0", "user1", "user2", "user3"]
        assert all(s.priority == 3 for s in subs if s.user == "user1")
        assert all(s.priority == 0 for s in subs if s.user != "user1")

    def test_streams_are_schedulable(self, line5):
        from repro.core import CloudScheduler

        subs = synthesize_traffic(6, pattern="bursty", seed=4,
                                  mean_interarrival_ns=1e6)
        out = CloudScheduler(line5, fidelity_threshold=1.0).schedule(subs)
        assert len(out.completion_ns) + len(out.rejected) == 6

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            synthesize_traffic(4, pattern="fractal")


class TestRateSweep:
    def test_same_programs_at_every_rate(self):
        sweep = traffic_rate_sweep(10, [1e5, 2e5, 1e6],
                                   mix="heavy_tail", seed=3)
        assert list(sweep) == [1e5, 2e5, 1e6]
        names = [[s.circuit.name for s in subs]
                 for subs in sweep.values()]
        assert names[0] == names[1] == names[2]
        users = [[s.user for s in subs] for subs in sweep.values()]
        assert users[0] == users[1] == users[2]

    def test_arrivals_scale_linearly_with_rate(self):
        sweep = traffic_rate_sweep(8, [1e5, 5e5], seed=9)
        slow = [s.arrival_ns for s in sweep[5e5]]
        fast = [s.arrival_ns for s in sweep[1e5]]
        assert slow[0] == fast[0] == 0.0
        for f, s in zip(fast[1:], slow[1:]):
            assert s == pytest.approx(5.0 * f)

    def test_deterministic_under_seed(self):
        first = traffic_rate_sweep(6, [2e5], seed=11)[2e5]
        again = traffic_rate_sweep(6, [2e5], seed=11)[2e5]
        assert [(s.circuit.name, s.arrival_ns, s.user, s.priority)
                for s in first] == [
                    (s.circuit.name, s.arrival_ns, s.user, s.priority)
                    for s in again]

    def test_priorities_apply(self):
        sweep = traffic_rate_sweep(4, [1e5], num_users=2, seed=1,
                                   user_priorities={"user0": 2})
        assert [s.priority for s in sweep[1e5]] == [2, 0, 2, 0]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            traffic_rate_sweep(4, [])
        with pytest.raises(ValueError, match="positive"):
            traffic_rate_sweep(4, [1e5, -1.0])
        with pytest.raises(ValueError, match="num_users"):
            traffic_rate_sweep(4, [1e5], num_users=0)


class TestDynamicFraction:
    def test_zero_fraction_is_bit_identical_noop(self):
        """dynamic_fraction=0 must not even touch the RNG, so existing
        seeded streams reproduce exactly."""
        plain = synthesize_traffic(10, seed=4)
        explicit = synthesize_traffic(10, seed=4, dynamic_fraction=0.0)
        assert [(s.circuit.name, s.arrival_ns) for s in plain] == [
            (s.circuit.name, s.arrival_ns) for s in explicit]

    def test_fraction_mixes_in_dynamic_circuits(self):
        subs = synthesize_traffic(40, seed=7, dynamic_fraction=0.4)
        dynamic = [s for s in subs
                   if s.circuit.has_control_flow()
                   or s.circuit.has_midcircuit_measurement()]
        assert 0 < len(dynamic) < 40
        from repro.workloads import dynamic_workload_names
        assert {s.circuit.name for s in dynamic} <= set(
            dynamic_workload_names())

    def test_dynamic_circuits_are_self_contained(self):
        """Dynamic builders carry their own measures — no measure_all
        stacked on top (that would re-measure mid-circuit clbits)."""
        from repro.workloads import dynamic_circuit, dynamic_workload_names
        from repro.circuits.controlflow import written_clbits_of

        subs = synthesize_traffic(30, seed=2, dynamic_fraction=1.0)
        for sub in subs:
            if sub.circuit.name in dynamic_workload_names():
                reference = dynamic_circuit(sub.circuit.name)
                assert len(sub.circuit) == len(reference)
                assert written_clbits_of(sub.circuit)

    def test_deterministic_under_seed(self):
        first = synthesize_traffic(20, seed=9, dynamic_fraction=0.5)
        again = synthesize_traffic(20, seed=9, dynamic_fraction=0.5)
        assert [s.circuit.name for s in first] == [
            s.circuit.name for s in again]

    def test_rate_sweep_accepts_fraction(self):
        sweep = traffic_rate_sweep(12, [1e5, 5e5], seed=3,
                                   dynamic_fraction=0.5)
        names_per_rate = [[s.circuit.name for s in subs]
                         for subs in sweep.values()]
        # Shared draw: same programs at every rate.
        assert names_per_rate[0] == names_per_rate[1]

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError, match="dynamic_fraction"):
            synthesize_traffic(4, seed=0, dynamic_fraction=1.5)

"""Durability-layer tests: the job store's persistence and degradation
contracts, Result round-trips, retry-policy determinism, and the
provider's resume-on-restart path."""

import json
import math
import sqlite3
import threading
import time
import warnings

import pytest

from repro.circuits import ghz_circuit
from repro.core.faults import (
    corrupt_file,
    locked_database,
    write_foreign_store,
)
from repro.hardware import linear_device
from repro.service import (
    JobError,
    JobSet,
    JobStatus,
    JobStore,
    JobTimeoutError,
    ProgramResult,
    QuantumProvider,
    Result,
    RetryPolicy,
    RunMetadata,
    ScheduleRecord,
)


def make_provider(tmp_path=None, **kwargs):
    if tmp_path is not None:
        kwargs.setdefault("store_path", str(tmp_path / "jobs.sqlite"))
    return QuantumProvider(**kwargs)


def minimal_result(job_id="job-000001"):
    return Result(metadata=RunMetadata(
        job_id=job_id, backend_name="test", method="direct", shots=0,
        num_programs=0, num_hardware_jobs=0, throughput=0.0))


# ----------------------------------------------------------------------
# JobStore: CRUD + reopen
# ----------------------------------------------------------------------

class TestJobStoreCrud:
    def test_submission_recorded(self, tmp_path):
        with JobStore(str(tmp_path / "s.sqlite")) as store:
            store.record_submission("job-000001", 1, "dev", b"spec")
            rec = store.get("job-000001")
            assert rec.status == "queued"
            assert rec.attempts == 0
            assert rec.spec == b"spec"
            assert rec.is_pending
            assert not store.disabled

    def test_transition_audit_trail(self, tmp_path):
        with JobStore(str(tmp_path / "s.sqlite")) as store:
            store.record_submission("job-000001", 1, "dev")
            store.record_transition("job-000001", "running", attempt=1)
            store.record_transition("job-000001", JobStatus.DONE,
                                    attempt=1)
            trail = [(t.status, t.attempt)
                     for t in store.transitions("job-000001")]
            assert trail == [("queued", 0), ("running", 1), ("done", 1)]
            assert not store.get("job-000001").is_pending

    def test_reopen_reloads_everything(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        payload = {"metadata": {"job_id": "job-000002"},
                   "programs": [], "schedule": None}
        with JobStore(path) as store:
            store.record_submission("job-000001", 1, "dev-a")
            store.record_transition("job-000001", "running", attempt=1)
            store.record_submission("job-000002", 2, "dev-b", b"xx")
            store.record_transition("job-000002", "done", attempt=1)
            store.record_result("job-000002", payload)
        with JobStore(path) as fresh:
            assert len(fresh) == 2
            assert fresh.stats["loaded"] == 2
            assert [r.job_id for r in fresh.jobs()] == [
                "job-000001", "job-000002"]
            # The job that was RUNNING at "crash" time is the one a
            # restart must re-run.
            assert [r.job_id for r in fresh.pending()] == ["job-000001"]
            done = fresh.get("job-000002")
            assert done.result == payload
            assert done.spec == b"xx"
            assert fresh.max_job_number() == 2
            trail = [t.status for t in fresh.transitions("job-000001")]
            assert trail == ["queued", "running"]

    def test_error_text_survives_reopen(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with JobStore(path) as store:
            store.record_submission("job-000001", 1, "dev")
            store.record_transition("job-000001", "error", attempt=2,
                                    error="worker exploded")
        with JobStore(path) as fresh:
            rec = fresh.get("job-000001")
            assert rec.status == "error"
            assert rec.attempts == 2
            assert rec.error == "worker exploded"

    def test_transition_for_unknown_job_is_noop(self, tmp_path):
        with JobStore(str(tmp_path / "s.sqlite")) as store:
            store.record_transition("job-999999", "done")
            store.record_result("job-999999", {})
            assert store.get("job-999999") is None
            assert len(store) == 0

    def test_max_job_number_empty(self, tmp_path):
        with JobStore(str(tmp_path / "s.sqlite")) as store:
            assert store.max_job_number() == 0


# ----------------------------------------------------------------------
# JobStore: degradation (never crash, warn once, keep serving)
# ----------------------------------------------------------------------

class TestJobStoreDegradation:
    def _assert_usable_in_memory(self, store):
        """A degraded store must keep full in-memory service."""
        store.record_submission("job-000001", 1, "dev")
        store.record_transition("job-000001", "done", attempt=1)
        store.record_result("job-000001", {"ok": True})
        rec = store.get("job-000001")
        assert rec.status == "done"
        assert rec.result == {"ok": True}
        store.close()

    def test_garbage_file_degrades(self, tmp_path):
        path = corrupt_file(str(tmp_path / "s.sqlite"), mode="garbage")
        with pytest.warns(RuntimeWarning, match="unusable"):
            store = JobStore(path)
        assert store.disabled
        self._assert_usable_in_memory(store)

    def test_foreign_database_refused_and_untouched(self, tmp_path):
        path = write_foreign_store(str(tmp_path / "theirs.sqlite"))
        with pytest.warns(RuntimeWarning, match="another application"):
            store = JobStore(path)
        assert store.disabled
        self._assert_usable_in_memory(store)
        conn = sqlite3.connect(path)
        try:
            tables = {row[0] for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'")}
            rows = conn.execute(
                "SELECT COUNT(*) FROM somebody_elses_data").fetchone()[0]
        finally:
            conn.close()
        assert "jobs" not in tables
        assert rows == 1

    def test_compile_cache_file_refused(self, tmp_path):
        """A PersistentCache file shares the ``meta`` convention but is
        not a job store — the table scan must catch it."""
        from repro.cache import PersistentCache

        path = str(tmp_path / "cache.sqlite")
        cache = PersistentCache(path)
        cache.put("k", b"artifact-bytes")
        cache.close()
        with pytest.warns(RuntimeWarning, match="unusable"):
            store = JobStore(path)
        assert store.disabled
        store.close()
        # The cache file is still a valid compile cache afterwards.
        reopened = PersistentCache(path)
        assert reopened.get("k") == b"artifact-bytes"
        reopened.close()

    def test_locked_database_degrades_fast(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        JobStore(path).close()
        with locked_database(path):
            with pytest.warns(RuntimeWarning, match="unusable"):
                store = JobStore(path, timeout=0.05)
            assert store.disabled
            self._assert_usable_in_memory(store)

    def test_newer_schema_left_untouched(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with JobStore(path) as store:
            store.record_submission("job-000001", 1, "dev")
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value='99' "
                     "WHERE key='schema_version'")
        conn.commit()
        conn.close()
        with pytest.warns(RuntimeWarning, match="schema version"):
            store = JobStore(path)
        assert store.disabled
        store.close()
        conn = sqlite3.connect(path)
        try:
            version = conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()[0]
            jobs = conn.execute("SELECT COUNT(*) FROM jobs").fetchone()[0]
        finally:
            conn.close()
        assert version == "99"
        assert jobs == 1

    def test_warns_exactly_once(self, tmp_path):
        path = corrupt_file(str(tmp_path / "s.sqlite"))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            store = JobStore(path)
            store.record_submission("job-000001", 1, "dev")
            store.record_transition("job-000001", "done")
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert store.stats["disabled"] == 1
        store.close()

    def test_mid_life_mirror_failure_degrades(self, tmp_path):
        """Losing the connection after open degrades writes, not reads."""
        path = str(tmp_path / "s.sqlite")
        store = JobStore(path)
        store.record_submission("job-000001", 1, "dev")
        store._conn.close()  # simulate the handle dying under us
        with pytest.warns(RuntimeWarning, match="unusable"):
            store.record_transition("job-000001", "done", attempt=1)
        assert store.disabled
        assert store.get("job-000001").status == "done"
        store.close()


# ----------------------------------------------------------------------
# Result / RunMetadata / ProgramResult round-trips
# ----------------------------------------------------------------------

class TestResultRoundTrip:
    def test_program_result_round_trip(self):
        prog = ProgramResult(
            index=3, circuit_name="ghz_2", partition=(4, 5), efs=0.125,
            counts={"00": 7, "11": 9}, probabilities={"00": 0.4,
                                                      "11": 0.6},
            pst=0.9, jsd=0.01, device_name="line-5", hardware_job=1,
            turnaround_ns=1234.5)
        payload = prog.to_dict()
        assert ProgramResult.from_dict(payload).to_dict() == payload

    def test_program_result_none_turnaround(self):
        prog = ProgramResult(
            index=0, circuit_name="c", partition=(0,), efs=0.0,
            counts={}, probabilities={"0": 1.0}, pst=1.0, jsd=0.0,
            device_name="d", hardware_job=0)
        payload = prog.to_dict()
        back = ProgramResult.from_dict(payload)
        assert back.turnaround_ns is None
        assert back.to_dict() == payload

    def test_metadata_nan_serializes_to_null_and_back(self):
        meta = RunMetadata(
            job_id="job-000001", backend_name="b", method="m", shots=16,
            num_programs=2, num_hardware_jobs=1, throughput=1.5,
            makespan_ns=float("nan"),
            mean_turnaround_ns=float("nan"))
        payload = meta.to_dict()
        assert payload["makespan_ns"] is None
        assert payload["mean_turnaround_ns"] is None
        back = RunMetadata.from_dict(payload)
        # null is the canonical spelling of a NaN timing: the round
        # trip converges (None stays None) instead of oscillating.
        assert back.makespan_ns is None
        assert back.to_dict() == payload

    def test_metadata_full_round_trip(self):
        meta = RunMetadata(
            job_id="job-000009", backend_name="fleet[a,b]",
            method="online-qucp(th=0.3)", shots=4096, num_programs=5,
            num_hardware_jobs=2, throughput=3.25, makespan_ns=1e6,
            mean_turnaround_ns=5e5, rejected=(1, 3),
            compile_requests=5, transpile_hits=2, transpile_misses=3,
            cache_evictions=1, cache_promotions=1, execution_batches=2,
            execution_chunks=4, execution_fallbacks=1, races=2,
            attempts=3,
            rejection_reasons=((1, "too wide"), (3, "no coupling")))
        payload = json.loads(json.dumps(meta.to_dict()))
        back = RunMetadata.from_dict(payload)
        assert back == meta
        assert back.to_dict() == payload

    def test_result_round_trip_is_bit_identical(self, line5):
        prov = QuantumProvider(devices=[line5])
        try:
            job = prov.simulator(line5).run(
                [ghz_circuit(2).measure_all()] * 2, shots=64, seed=11)
            payload = job.result().to_dict()
        finally:
            prov.shutdown()
        # Through JSON bytes, exactly as the store holds it.
        stored = json.loads(json.dumps(payload))
        back = Result.from_dict(stored)
        assert back.to_dict() == payload
        assert back.counts(0) == payload["programs"][0]["counts"]

    def test_rehydrated_schedule_is_a_read_only_record(self, line5):
        prov = QuantumProvider(devices=[line5])
        try:
            job = prov.backend(line5).run(
                [ghz_circuit(2).measure_all()], shots=16, seed=3)
            payload = job.result().to_dict()
        finally:
            prov.shutdown()
        back = Result.from_dict(payload)
        record = back.schedule
        assert isinstance(record, ScheduleRecord)
        assert record.num_jobs == payload["schedule"]["num_jobs"]
        with pytest.raises(AttributeError):
            record.num_jobs = 99
        with pytest.raises(AttributeError):
            record.no_such_field
        assert back.to_dict()["schedule"] == payload["schedule"]

    def test_nan_timings_round_trip_through_store(self, tmp_path):
        """A direct-run result (NaN-free but None-timing) survives the
        actual SQLite round trip bit-identically."""
        res = minimal_result()
        assert math.isnan(res.mean_pst())  # no programs
        payload = res.to_dict()
        path = str(tmp_path / "s.sqlite")
        with JobStore(path) as store:
            store.record_submission("job-000001", 1, "dev")
            store.record_result("job-000001", payload)
        with JobStore(path) as fresh:
            stored = fresh.get("job-000001").result
        assert Result.from_dict(stored).to_dict() == payload


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_delay_is_deterministic_per_job_and_attempt(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        for attempt in (1, 2, 3):
            assert a.delay_s("job-000042", attempt) == \
                b.delay_s("job-000042", attempt)
        assert a.delay_s("job-000001", 1) != a.delay_s("job-000002", 1)
        assert a.delay_s("job-000001", 1) != a.delay_s("job-000001", 2)

    def test_delay_bounds_and_cap(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=2.0,
                             max_backoff_s=0.3, jitter=0.1)
        for attempt, base in ((1, 0.1), (2, 0.2), (3, 0.3), (9, 0.3)):
            delay = policy.delay_s("job-000001", attempt)
            assert base * 0.9 <= delay <= base * 1.1

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff_s=0.25, jitter=0.0)
        assert policy.delay_s("anything", 1) == 0.25
        assert policy.delay_s("anything", 2) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(attempt_timeout_s=0)
        with pytest.raises(ValueError):
            RetryPolicy().delay_s("job", 0)

    def test_non_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.retries(OSError("flaky disk"))
        assert not policy.retries(JobError("all rejected"))

    def test_run_attempt_timeout(self):
        policy = RetryPolicy(attempt_timeout_s=0.05)
        with pytest.raises(JobTimeoutError) as info:
            policy.run_attempt(lambda: time.sleep(5), "job-000001", 2)
        assert info.value.job_id == "job-000001"
        assert info.value.attempt == 2
        assert policy.run_attempt(lambda: "ok", "job-000001", 1) == "ok"

    def test_flaky_job_retries_to_success(self, line5):
        prov = QuantumProvider(
            devices=[line5],
            retry_policy=RetryPolicy(max_attempts=3, backoff_s=0.005))
        try:
            backend = prov.simulator(line5)
            calls = {"n": 0}

            def flaky(job_id):
                calls["n"] += 1
                if calls["n"] < 3:
                    raise OSError("transient glitch")
                return minimal_result(job_id)

            job = prov._submit_job(backend, flaky)
            result = job.result()
            assert job.status() is JobStatus.DONE
            assert job.attempts == 3
            # The surviving attempt's count lands in the metadata.
            assert result.metadata.attempts == 3
        finally:
            prov.shutdown()

    def test_exhausted_attempts_surface_last_error(self, line5):
        prov = QuantumProvider(
            devices=[line5],
            retry_policy=RetryPolicy(max_attempts=2, backoff_s=0.005))
        try:
            def doomed(job_id):
                raise OSError("still broken")

            job = prov._submit_job(prov.simulator(line5), doomed)
            with pytest.raises(OSError, match="still broken"):
                job.result()
            assert job.status() is JobStatus.ERROR
            assert job.attempts == 2
        finally:
            prov.shutdown()

    def test_job_error_is_not_retried(self, line5):
        prov = QuantumProvider(
            devices=[line5],
            retry_policy=RetryPolicy(max_attempts=5, backoff_s=0.005))
        try:
            calls = {"n": 0}

            def rejected(job_id):
                calls["n"] += 1
                raise JobError("all rejected", job_id=job_id,
                               reasons={0: "too wide"})

            job = prov._submit_job(prov.simulator(line5), rejected)
            with pytest.raises(JobError, match="program 0: too wide"):
                job.result()
            assert calls["n"] == 1
            assert job.attempts == 1
        finally:
            prov.shutdown()

    def test_timed_out_attempt_retries(self, line5):
        prov = QuantumProvider(
            devices=[line5],
            retry_policy=RetryPolicy(max_attempts=2, backoff_s=0.005,
                                     attempt_timeout_s=0.2))
        try:
            calls = {"n": 0}

            def slow_then_fast(job_id):
                calls["n"] += 1
                if calls["n"] == 1:
                    time.sleep(2.0)  # abandoned by the timeout
                return minimal_result(job_id)

            job = prov._submit_job(prov.simulator(line5),
                                   slow_then_fast)
            result = job.result(timeout=30)
            assert result.metadata.attempts == 2
        finally:
            prov.shutdown()


# ----------------------------------------------------------------------
# Provider durability: persist, rehydrate, resume
# ----------------------------------------------------------------------

class TestProviderDurability:
    def test_completed_job_persisted_with_trail(self, tmp_path, line5):
        prov = make_provider(tmp_path, devices=[line5])
        try:
            job = prov.simulator(line5).run(
                [ghz_circuit(2).measure_all()], shots=32, seed=5)
            payload = job.result().to_dict()
            rec = prov.store.get(job.job_id)
            assert rec.status == "done"
            assert rec.result == payload
            assert rec.spec is not None
            trail = [t.status
                     for t in prov.store.transitions(job.job_id)]
            assert trail == ["queued", "running", "done"]
        finally:
            prov.shutdown()

    def test_restart_reserves_results_bit_identically(self, tmp_path,
                                                      line5):
        prov = make_provider(tmp_path, devices=[line5])
        job = prov.simulator(line5).run(
            [ghz_circuit(3).measure_all()], shots=64, seed=9)
        payload = job.result().to_dict()
        job_id = job.job_id
        prov.shutdown()

        fresh = make_provider(tmp_path, devices=[line5])
        try:
            handle = fresh.job(job_id)
            assert handle.status() is JobStatus.DONE
            rehydrated = handle.result()
            assert rehydrated.to_dict() == payload
            assert isinstance(rehydrated.schedule, (type(None),
                                                    ScheduleRecord))
        finally:
            fresh.shutdown()

    def test_restart_resumes_interrupted_job(self, tmp_path, line5):
        prov = make_provider(tmp_path, devices=[line5])
        job = prov.simulator(line5).run(
            [ghz_circuit(2).measure_all()] * 2, shots=32, seed=4)
        payload = job.result().to_dict()
        job_id = job.job_id
        prov.shutdown()

        # Simulate dying mid-run: rewind the stored status to RUNNING.
        with JobStore(str(tmp_path / "jobs.sqlite")) as store:
            store.record_transition(job_id, "running", attempt=1)

        fresh = make_provider(tmp_path, devices=[line5])
        try:
            handle = fresh.job(job_id)
            assert handle.job_id == job_id
            result = handle.result(timeout=120)
            assert handle.status() is JobStatus.DONE
            # The replay is the same deterministic computation: same
            # programs, same counts, same schedule.
            replayed = result.to_dict()
            assert replayed["programs"] == payload["programs"]
            assert replayed["schedule"] == payload["schedule"]
            rec = fresh.store.get(job_id)
            assert rec.status == "done"
        finally:
            fresh.shutdown()

    def test_unreplayable_interrupted_job_errors(self, tmp_path, line5):
        prov = make_provider(tmp_path, devices=[line5])
        job = prov._submit_job(prov.simulator(line5),
                               lambda job_id: minimal_result(job_id))
        job.result()
        job_id = job.job_id
        prov.shutdown()
        with JobStore(str(tmp_path / "jobs.sqlite")) as store:
            assert store.get(job_id).spec is None  # no replay recipe
            store.record_transition(job_id, "running", attempt=1)

        fresh = make_provider(tmp_path, devices=[line5])
        try:
            handle = fresh.job(job_id)
            assert handle.status() is JobStatus.ERROR
            with pytest.raises(RuntimeError, match="not.*replayable"):
                handle.result()
        finally:
            fresh.shutdown()

    def test_error_job_rehydrates_as_error(self, tmp_path, line5):
        prov = make_provider(tmp_path, devices=[line5])
        job = prov.backend(line5).run(
            [ghz_circuit(8).measure_all()], shots=16, seed=1)
        with pytest.raises(JobError):
            job.result()
        job_id = job.job_id
        prov.shutdown()

        fresh = make_provider(tmp_path, devices=[line5])
        try:
            handle = fresh.job(job_id)
            assert handle.status() is JobStatus.ERROR
            with pytest.raises(RuntimeError, match="rejected"):
                handle.result()
        finally:
            fresh.shutdown()

    def test_job_numbering_continues_after_restart(self, tmp_path,
                                                   line5):
        prov = make_provider(tmp_path, devices=[line5])
        first = prov.simulator(line5).run(
            [ghz_circuit(2).measure_all()], shots=8, seed=1)
        first.result()
        prov.shutdown()

        fresh = make_provider(tmp_path, devices=[line5])
        try:
            second = fresh.simulator(line5).run(
                [ghz_circuit(2).measure_all()], shots=8, seed=2)
            second.result()
            assert first.job_id == "job-000001"
            assert second.job_id == "job-000002"
        finally:
            fresh.shutdown()

    def test_env_var_supplies_store_path(self, tmp_path, line5,
                                         monkeypatch):
        path = str(tmp_path / "env-jobs.sqlite")
        monkeypatch.setenv("REPRO_JOB_STORE", path)
        prov = QuantumProvider(devices=[line5])
        try:
            assert prov.store_path == path
            job = prov.simulator(line5).run(
                [ghz_circuit(2).measure_all()], shots=8, seed=1)
            job.result()
            assert prov.store.get(job.job_id).status == "done"
        finally:
            prov.shutdown()

    def test_evicted_handle_falls_back_to_store(self, tmp_path, line5):
        prov = make_provider(tmp_path, devices=[line5], job_history=1)
        try:
            sim = prov.simulator(line5)
            first = sim.run([ghz_circuit(2).measure_all()], shots=8,
                            seed=1)
            payload = first.result().to_dict()
            second = sim.run([ghz_circuit(2).measure_all()], shots=8,
                             seed=2)
            second.result()
            third = sim.run([ghz_circuit(2).measure_all()], shots=8,
                            seed=3)
            third.result()
            # The registry is bounded, but the durable store still
            # resolves the evicted id.
            assert len(prov.jobs()) <= 2
            handle = prov.job(first.job_id)
            assert handle.result().to_dict() == payload
        finally:
            prov.shutdown()

    def test_cancelled_job_recorded_and_rehydrated(self, tmp_path,
                                                   line5):
        from concurrent.futures import CancelledError

        prov = make_provider(tmp_path, devices=[line5])
        release = threading.Event()
        blocker = prov._submit_job(
            prov.simulator(line5),
            lambda job_id: (release.wait(30),
                            minimal_result(job_id))[1])
        queued = prov._submit_job(
            prov.simulator(line5),
            lambda job_id: minimal_result(job_id))
        try:
            assert queued.cancel()
            assert queued.status() is JobStatus.CANCELLED
            release.set()
            blocker.result()
            assert prov.store.get(queued.job_id).status == "cancelled"
            queued_id = queued.job_id
        finally:
            release.set()
            prov.shutdown()

        fresh = make_provider(tmp_path, devices=[line5])
        try:
            handle = fresh.job(queued_id)
            assert handle.status() is JobStatus.CANCELLED
            with pytest.raises(CancelledError):
                handle.result()
        finally:
            fresh.shutdown()

    def test_corrupt_store_degrades_but_jobs_run(self, tmp_path, line5):
        path = corrupt_file(str(tmp_path / "jobs.sqlite"))
        with pytest.warns(RuntimeWarning, match="unusable"):
            prov = QuantumProvider(devices=[line5], store_path=path)
        try:
            job = prov.simulator(line5).run(
                [ghz_circuit(2).measure_all()], shots=16, seed=1)
            result = job.result()
            assert job.status() is JobStatus.DONE
            assert len(result.programs) == 1
            # Still tracked (in memory), just not durable.
            assert prov.store.disabled
            assert prov.store.get(job.job_id).status == "done"
        finally:
            prov.shutdown()


# ----------------------------------------------------------------------
# JobSet partial-failure mode
# ----------------------------------------------------------------------

class TestJobSetPartialFailure:
    def test_return_exceptions_collects_in_order(self, line5):
        prov = QuantumProvider(devices=[line5])
        try:
            sim = prov.simulator(line5)
            good = sim.run([ghz_circuit(2).measure_all()], shots=8,
                           seed=1)
            # Every submission too wide for the fleet: a JobError.
            bad = prov.backend(line5).run(
                [ghz_circuit(8).measure_all()], shots=8, seed=1)
            tail = sim.run([ghz_circuit(2).measure_all()], shots=8,
                           seed=2)
            jobs = JobSet([good, bad, tail])

            collected = jobs.results(return_exceptions=True)
            assert isinstance(collected[0], Result)
            assert isinstance(collected[1], JobError)
            assert isinstance(collected[2], Result)
            assert collected[1].reasons  # structured, per-program

            # The default mode still aborts on the first failure.
            with pytest.raises(JobError):
                jobs.results()
        finally:
            prov.shutdown()

    def test_cancelled_member_contributes_its_exception(self, line5):
        from concurrent.futures import CancelledError

        prov = QuantumProvider(devices=[line5])
        release = threading.Event()
        try:
            blocker = prov._submit_job(
                prov.simulator(line5),
                lambda job_id: (release.wait(30),
                                minimal_result(job_id))[1])
            queued = prov._submit_job(
                prov.simulator(line5),
                lambda job_id: minimal_result(job_id))
            assert queued.cancel()
            release.set()
            jobs = JobSet([blocker, queued])
            collected = jobs.results(return_exceptions=True)
            assert isinstance(collected[0], Result)
            assert isinstance(collected[1], CancelledError)
        finally:
            release.set()
            prov.shutdown()

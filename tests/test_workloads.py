"""Unit tests for the Table II workload suite."""

import pytest

from repro.sim import ideal_probabilities
from repro.workloads import TABLE_II, all_workloads, workload, workload_names


class TestTableII:
    @pytest.mark.parametrize("name", workload_names())
    def test_counts_match_paper(self, name):
        w = workload(name)
        qc = w.circuit(measured=False)
        exp_qubits, exp_gates, exp_cx, _ = TABLE_II[name]
        assert qc.num_qubits == exp_qubits
        assert qc.size() == exp_gates
        assert qc.num_cx() == exp_cx

    @pytest.mark.parametrize("name", workload_names())
    def test_output_type_matches_paper(self, name):
        w = workload(name)
        probs = ideal_probabilities(w.circuit())
        _, _, _, result = TABLE_II[name]
        if result == "1":
            assert len(probs) == 1
            assert w.deterministic
            assert w.metric == "pst"
        else:
            assert len(probs) > 1
            assert not w.deterministic
            assert w.metric == "jsd"

    def test_eight_workloads(self):
        assert len(all_workloads()) == 8

    def test_aliases(self):
        assert workload("lin").name == "linearsolver"
        assert workload("4mod").name == "4mod5-v1_22"
        assert workload("alu").name == "alu-v0_27"
        assert workload("qec").name == "qec_en"
        assert workload("var").name == "variation"
        assert workload("fred").name == "fredkin"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            workload("grover")

    def test_measured_circuit_has_measures(self):
        qc = workload("adder").circuit()
        assert qc.count_ops()["measure"] == 4

    def test_unmeasured_circuit(self):
        qc = workload("adder").circuit(measured=False)
        assert "measure" not in qc.count_ops()

    def test_adder_output_is_expected_sum(self):
        """adder_n4 computes 1+1 on the inputs set by the X gates."""
        probs = ideal_probabilities(workload("adder").circuit())
        assert len(probs) == 1
        key = next(iter(probs))
        assert probs[key] == pytest.approx(1.0)


class TestQasmExport:
    def test_dump_and_reparse(self, tmp_path):
        from repro.circuits import parse_qasm
        from repro.sim import ideal_probabilities
        from repro.workloads import dump_qasm

        paths = dump_qasm(str(tmp_path))
        assert len(paths) == 8
        for path, w in zip(paths, all_workloads()):
            with open(path, encoding="utf-8") as handle:
                reparsed = parse_qasm(handle.read())
            original = w.circuit()
            assert reparsed.num_qubits == original.num_qubits
            assert ideal_probabilities(reparsed) == pytest.approx(
                ideal_probabilities(original))

"""Unit tests for the discrete-event kernel."""

import pytest

from repro.core import EventKind, EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL, "late")
        q.push(1.0, EventKind.ARRIVAL, "early")
        q.push(3.0, EventKind.ARRIVAL, "middle")
        assert [e.payload for e in q.drain()] == [
            "early", "middle", "late"]

    def test_same_instant_kind_ordering(self):
        """ARRIVAL < COMPLETION < DISPATCH at one instant: programs are
        queued and devices freed before the dispatch decision runs."""
        q = EventQueue()
        q.push(2.0, EventKind.DISPATCH)
        q.push(2.0, EventKind.ARRIVAL)
        q.push(2.0, EventKind.COMPLETION)
        kinds = [e.kind for e in q.drain()]
        assert kinds == [EventKind.ARRIVAL, EventKind.COMPLETION,
                         EventKind.DISPATCH]

    def test_fifo_within_kind(self):
        q = EventQueue()
        for i in range(5):
            q.push(1.0, EventKind.ARRIVAL, i)
        assert [e.payload for e in q.drain()] == [0, 1, 2, 3, 4]

    def test_peek_and_len(self):
        q = EventQueue()
        assert not q
        assert q.peek() is None
        q.push(1.0, EventKind.DISPATCH)
        q.push(0.5, EventKind.DISPATCH)
        assert len(q) == 2
        assert q.peek().time_ns == 0.5
        assert len(q) == 2  # peek does not consume

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.ARRIVAL)

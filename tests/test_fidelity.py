"""Unit tests for the state-comparison utilities."""

import math

import numpy as np
import pytest

from repro.sim import (
    counts_fidelity,
    hellinger_fidelity,
    purity,
    state_fidelity,
    trace_distance,
)


def _plus():
    return np.array([1, 1]) / math.sqrt(2)


def _mixed(d=2):
    return np.eye(d, dtype=complex) / d


class TestStateFidelity:
    def test_identical_pure_states(self):
        psi = _plus()
        assert state_fidelity(psi, psi) == pytest.approx(1.0)

    def test_orthogonal_states(self):
        a = np.array([1, 0], dtype=complex)
        b = np.array([0, 1], dtype=complex)
        assert state_fidelity(a, b) == pytest.approx(0.0)

    def test_pure_vs_mixed(self):
        psi = np.array([1, 0], dtype=complex)
        assert state_fidelity(psi, _mixed()) == pytest.approx(0.5)

    def test_mixed_vs_mixed(self):
        rho = np.diag([0.7, 0.3]).astype(complex)
        assert state_fidelity(rho, rho) == pytest.approx(1.0, abs=1e-9)

    def test_symmetric(self):
        rho = np.diag([0.9, 0.1]).astype(complex)
        sigma = _mixed()
        assert state_fidelity(rho, sigma) == pytest.approx(
            state_fidelity(sigma, rho), abs=1e-9)

    def test_global_phase_invariant(self):
        psi = _plus()
        assert state_fidelity(psi, np.exp(1j * 0.7) * psi) == \
            pytest.approx(1.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            state_fidelity(np.array([1, 0]), np.array([1, 0, 0, 0]))


class TestTraceDistance:
    def test_identical_zero(self):
        rho = _mixed()
        assert trace_distance(rho, rho) == pytest.approx(0.0)

    def test_orthogonal_pure_is_one(self):
        a = np.array([1, 0], dtype=complex)
        b = np.array([0, 1], dtype=complex)
        assert trace_distance(a, b) == pytest.approx(1.0)

    def test_fuchs_van_de_graaf_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            v1 = rng.normal(size=2) + 1j * rng.normal(size=2)
            v2 = rng.normal(size=2) + 1j * rng.normal(size=2)
            v1, v2 = v1 / np.linalg.norm(v1), v2 / np.linalg.norm(v2)
            f = state_fidelity(v1, v2)
            t = trace_distance(v1, v2)
            assert 1 - math.sqrt(f) <= t + 1e-9
            assert t <= math.sqrt(1 - f) + 1e-9


class TestPurity:
    def test_pure_state(self):
        assert purity(_plus()) == pytest.approx(1.0)

    def test_maximally_mixed(self):
        assert purity(_mixed(4)) == pytest.approx(0.25)


class TestHellinger:
    def test_identical(self):
        p = {"00": 0.5, "11": 0.5}
        assert hellinger_fidelity(p, p) == pytest.approx(1.0)

    def test_disjoint(self):
        assert hellinger_fidelity({"0": 1.0}, {"1": 1.0}) == \
            pytest.approx(0.0)

    def test_counts_vs_probs(self):
        counts = {"00": 500, "11": 500}
        ideal = {"00": 0.5, "11": 0.5}
        assert counts_fidelity(counts, ideal) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hellinger_fidelity({}, {"0": 1.0})

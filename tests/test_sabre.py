"""Unit tests for the SABRE lookahead router."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, qft_circuit, random_circuit
from repro.sim import simulate_statevector
from repro.transpiler import (
    Layout,
    decompose_to_basis,
    sabre_route,
    transpile,
)


def _marginals_match(circ_log, routed, n_phys):
    sv_log = np.abs(simulate_statevector(
        circ_log.without_measurements())) ** 2
    sv_phys = np.abs(simulate_statevector(
        routed.circuit.without_measurements())) ** 2
    n_log = circ_log.num_qubits
    fl = routed.final_layout
    for idx in range(2 ** n_log):
        bits = [(idx >> (n_log - 1 - q)) & 1 for q in range(n_log)]
        pbits = [0] * n_phys
        for q in range(n_log):
            pbits[fl.physical(q)] = bits[q]
        pidx = 0
        for b in pbits:
            pidx = (pidx << 1) | b
        if abs(sv_log[idx] - sv_phys[pidx]) > 1e-8:
            return False
    return True


class TestSabreRoute:
    def test_adjacent_gates_no_swaps(self, line5):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        routed = sabre_route(decompose_to_basis(qc), line5.coupling,
                             Layout.trivial(2), line5.calibration)
        assert routed.num_swaps == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_semantics_preserved(self, line5, seed):
        qc = random_circuit(4, 7, seed=seed)
        routed = sabre_route(decompose_to_basis(qc), line5.coupling,
                             Layout.trivial(4), line5.calibration)
        assert _marginals_match(qc, routed, 5)

    def test_measures_remapped(self, line5):
        qc = QuantumCircuit(2, 2)
        qc.cx(0, 1).measure(0, 0).measure(1, 1)
        layout = Layout({0: 3, 1: 4})
        routed = sabre_route(qc, line5.coupling, layout,
                             line5.calibration)
        measures = [(i.qubits[0], i.clbits[0])
                    for i in routed.circuit if i.name == "measure"]
        assert measures == [(3, 0), (4, 1)]

    def test_multiq_rejected(self, line5):
        qc = QuantumCircuit(3)
        qc.ccx(0, 1, 2)
        with pytest.raises(ValueError):
            sabre_route(qc, line5.coupling, Layout.trivial(3))

    def test_output_respects_coupling(self, toronto):
        qc = decompose_to_basis(qft_circuit(6))
        layout = Layout.from_sequence((0, 1, 4, 7, 10, 12))
        routed = sabre_route(qc, toronto.coupling, layout,
                             toronto.calibration)
        for inst in routed.circuit:
            if len(inst.qubits) == 2:
                assert toronto.coupling.is_edge(*inst.qubits)


class TestSabreVsBasic:
    def test_sabre_not_worse_on_congested_circuits(self, line5):
        """On a line, lookahead routing should use no more SWAPs than
        shortest-path walking for QFT-style all-to-all circuits."""
        from repro.hardware import linear_device

        dev = linear_device(6, seed=2)
        basic = transpile(qft_circuit(6), dev.coupling, dev.calibration,
                          router="basic")
        sabre = transpile(qft_circuit(6), dev.coupling, dev.calibration,
                          router="sabre")
        assert sabre.num_swaps <= basic.num_swaps

    def test_unknown_router_rejected(self, line5):
        with pytest.raises(ValueError):
            transpile(qft_circuit(3), line5.coupling, line5.calibration,
                      router="teleport")

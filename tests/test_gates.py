"""Unit tests for the gate definitions."""

import math

import numpy as np
import pytest

from repro.circuits.gates import (
    BASIS_GATES,
    DIRECTIVES,
    Gate,
    GateError,
    gate,
    is_directive,
    standard_gate_names,
)


def _is_unitary(mat: np.ndarray) -> bool:
    return np.allclose(mat @ mat.conj().T, np.eye(mat.shape[0]), atol=1e-10)


class TestGateConstruction:
    def test_fixed_gate_by_name(self):
        g = gate("h")
        assert g.name == "h"
        assert g.num_qubits == 1
        assert g.params == ()

    def test_two_qubit_gate_arity(self):
        assert gate("cx").num_qubits == 2
        assert gate("swap").num_qubits == 2
        assert gate("ccx").num_qubits == 3

    def test_parametric_gate(self):
        g = gate("rz", 0.5)
        assert g.params == (0.5,)
        assert g.num_qubits == 1

    def test_unknown_gate_rejected(self):
        with pytest.raises(GateError):
            gate("frobnicate")

    def test_fixed_gate_with_params_rejected(self):
        with pytest.raises(GateError):
            Gate("h", 1, (0.3,))

    def test_parametric_wrong_param_count_rejected(self):
        with pytest.raises(GateError):
            Gate("u", 1, (0.1, 0.2))

    def test_wrong_qubit_count_rejected(self):
        with pytest.raises(GateError):
            Gate("cx", 1)

    def test_case_insensitive_lookup(self):
        assert gate("CX").name == "cx"


class TestGateMatrices:
    @pytest.mark.parametrize("name", [
        n for n in standard_gate_names()
    ])
    def test_every_gate_matrix_is_unitary(self, name):
        from repro.circuits.gates import _PARAMETRIC  # noqa: PLC2701

        if name in _PARAMETRIC:
            _, nparams, _ = _PARAMETRIC[name]
            g = gate(name, *([0.37] * nparams))
        else:
            g = gate(name)
        mat = g.matrix()
        assert mat.shape == (2 ** g.num_qubits, 2 ** g.num_qubits)
        assert _is_unitary(mat)

    def test_cx_truth_table(self):
        cx = gate("cx").matrix()
        # control = qubit 0 (most significant): |10> -> |11>, |11> -> |10>
        assert np.allclose(cx @ np.eye(4)[:, 2], np.eye(4)[:, 3])
        assert np.allclose(cx @ np.eye(4)[:, 3], np.eye(4)[:, 2])
        assert np.allclose(cx @ np.eye(4)[:, 0], np.eye(4)[:, 0])

    def test_ccx_flips_only_when_both_controls_set(self):
        ccx = gate("ccx").matrix()
        assert np.allclose(ccx @ np.eye(8)[:, 6], np.eye(8)[:, 7])
        assert np.allclose(ccx @ np.eye(8)[:, 7], np.eye(8)[:, 6])
        for basis in range(6):
            assert np.allclose(ccx @ np.eye(8)[:, basis],
                               np.eye(8)[:, basis])

    def test_cswap_swaps_targets_when_control_set(self):
        cswap = gate("cswap").matrix()
        # |101> (=5) <-> |110> (=6)
        assert np.allclose(cswap @ np.eye(8)[:, 5], np.eye(8)[:, 6])
        assert np.allclose(cswap @ np.eye(8)[:, 6], np.eye(8)[:, 5])

    def test_rz_phases(self):
        rz = gate("rz", math.pi).matrix()
        assert np.allclose(rz, np.diag([-1j, 1j]))

    def test_sx_squares_to_x(self):
        sx = gate("sx").matrix()
        x = gate("x").matrix()
        assert np.allclose(sx @ sx, x)

    def test_u_reduces_to_known_gates(self):
        h = gate("u", math.pi / 2, 0.0, math.pi).matrix()
        assert np.allclose(h, gate("h").matrix(), atol=1e-12)

    def test_directive_has_no_matrix(self):
        with pytest.raises(GateError):
            Gate("measure", 1).matrix()


class TestInverses:
    @pytest.mark.parametrize("name", ["x", "y", "z", "h", "cx", "cz",
                                      "swap", "ccx", "cswap", "s", "sdg",
                                      "t", "tdg", "sx", "sxdg"])
    def test_fixed_inverse(self, name):
        g = gate(name)
        inv = g.inverse()
        prod = inv.matrix() @ g.matrix()
        assert np.allclose(prod, np.eye(prod.shape[0]), atol=1e-10)

    @pytest.mark.parametrize("name,params", [
        ("rz", (0.7,)), ("rx", (1.2,)), ("ry", (-0.4,)),
        ("cp", (0.9,)), ("rzz", (0.3,)), ("u", (0.5, 1.0, -0.2)),
    ])
    def test_parametric_inverse(self, name, params):
        g = gate(name, *params)
        inv = g.inverse()
        prod = inv.matrix() @ g.matrix()
        assert np.allclose(prod, np.eye(prod.shape[0]), atol=1e-10)


class TestDirectives:
    def test_directive_names(self):
        for name in ("measure", "barrier", "reset", "delay"):
            assert is_directive(name)
            assert name in DIRECTIVES

    def test_basis_gates_constant(self):
        assert BASIS_GATES == ("rz", "sx", "x", "cx")

"""Unit tests for DAG layering and scheduling levels."""

from repro.circuits import QuantumCircuit
from repro.circuits.dag import (
    CircuitDag,
    alap_layers,
    asap_layers,
    instruction_levels,
    simultaneous_twoq_pairs,
)


def _names(layers):
    return [[inst.name for inst in layer] for layer in layers]


class TestAsapLayers:
    def test_parallel_gates_share_layer(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(1)
        assert _names(asap_layers(qc)) == [["h", "h"]]

    def test_dependency_chain_separates(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).x(1)
        assert _names(asap_layers(qc)) == [["h"], ["cx"], ["x"]]

    def test_barrier_orders_but_not_emitted(self):
        qc = QuantumCircuit(2)
        qc.h(0).barrier().h(1)
        layers = asap_layers(qc)
        assert _names(layers) == [["h"], ["h"]]

    def test_empty_circuit(self):
        assert asap_layers(QuantumCircuit(2)) == []


class TestAlapLayers:
    def test_short_branch_scheduled_late(self):
        qc = QuantumCircuit(2)
        qc.x(0).x(0).x(0)   # long chain on qubit 0
        qc.h(1)             # single gate on qubit 1
        alap = alap_layers(qc)
        # Under ALAP the lone h lands in the final layer.
        assert "h" in [i.name for i in alap[-1]]
        asap = asap_layers(qc)
        assert "h" in [i.name for i in asap[0]]

    def test_alap_preserves_all_instructions(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).cx(1, 2).x(0)
        total = sum(len(layer) for layer in alap_layers(qc))
        assert total == 4


class TestInstructionLevels:
    def test_asap_levels(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).x(1)
        assert instruction_levels(qc, "asap") == [0, 1, 2]

    def test_alap_levels_count_from_end(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).x(1)
        # x is the last layer -> 0 from the end; cx -> 1; h -> 2.
        assert instruction_levels(qc, "alap") == [2, 1, 0]

    def test_alap_aligns_ends(self):
        qc = QuantumCircuit(2)
        qc.x(0).x(0).h(1)
        levels = instruction_levels(qc, "alap")
        # Both final ops (second x, the h) are 0 from the end.
        assert levels[1] == 0
        assert levels[2] == 0

    def test_unknown_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            instruction_levels(QuantumCircuit(1), "sometime")


class TestCircuitDag:
    def test_front_layer(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        dag = CircuitDag(qc)
        front = dag.front_layer()
        assert len(front) == 1
        assert front[0].instruction.name == "h"

    def test_successor_edges(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).x(1)
        dag = CircuitDag(qc)
        assert dag.successors[0] == [1]
        assert dag.successors[1] == [2]
        assert dag.predecessors[2] == [1]


class TestSimultaneousPairs:
    def test_pairs_by_layer(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 1).cx(2, 3)
        qc.cx(1, 2)
        pairs = simultaneous_twoq_pairs(asap_layers(qc))
        assert pairs[0] == [(0, 1), (2, 3)]
        assert pairs[1] == [(1, 2)]

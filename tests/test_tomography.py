"""Unit tests for state tomography."""

import numpy as np
import pytest

from repro.characterization import (
    project_to_physical,
    state_tomography,
    tomography_circuits,
)
from repro.circuits import QuantumCircuit, bell_pair, ghz_circuit
from repro.sim import simulate_statevector, state_fidelity


class TestTomographyCircuits:
    def test_setting_count(self):
        assert len(tomography_circuits(bell_pair())) == 9  # 3^2

    def test_settings_unique(self):
        settings = [s for s, _ in tomography_circuits(bell_pair())]
        assert len(set(settings)) == 9

    def test_all_circuits_measured(self):
        for _, qc in tomography_circuits(bell_pair()):
            assert qc.count_ops()["measure"] == 2


class TestProjection:
    def test_physical_state_unchanged(self):
        rho = np.diag([0.7, 0.3]).astype(complex)
        assert np.allclose(project_to_physical(rho), rho, atol=1e-12)

    def test_negative_eigenvalue_removed(self):
        rho = np.diag([1.1, -0.1]).astype(complex)
        fixed = project_to_physical(rho)
        eigs = np.linalg.eigvalsh(fixed)
        assert eigs.min() >= -1e-12
        assert np.trace(fixed).real == pytest.approx(1.0)

    def test_output_hermitian(self):
        rng = np.random.default_rng(0)
        mat = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        rho = mat + mat.conj().T
        rho = rho / np.trace(rho).real
        fixed = project_to_physical(rho)
        assert np.allclose(fixed, fixed.conj().T)


class TestStateTomography:
    @pytest.mark.parametrize("prep", [
        bell_pair, lambda: ghz_circuit(2),
    ])
    def test_ideal_reconstruction_exact(self, prep):
        circuit = prep()
        result = state_tomography(circuit)
        sv = simulate_statevector(circuit)
        assert state_fidelity(sv, result.density_matrix) == \
            pytest.approx(1.0, abs=1e-9)

    def test_single_qubit_plus_state(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        result = state_tomography(qc)
        assert result.expectations["X"] == pytest.approx(1.0, abs=1e-9)
        assert result.expectations["Z"] == pytest.approx(0.0, abs=1e-9)

    def test_noisy_state_fidelity_below_ideal(self, toronto):
        result = state_tomography(bell_pair(), device=toronto,
                                  partition=(0, 1))
        sv = simulate_statevector(bell_pair())
        fid = state_fidelity(sv, result.density_matrix)
        assert 0.6 < fid < 1.0

    def test_mitigated_reconstruction_matches_simulator_rho(self, toronto):
        """With readout mitigation, tomography recovers the exact
        *pre-measurement* density matrix of the noisy simulator."""
        from repro.sim import run_circuit

        qc = bell_pair()
        measured = qc.copy()
        measured.measure_all()
        nm = toronto.noise_model().restricted((0, 1))
        exact = run_circuit(measured, noise_model=nm, shots=0,
                            keep_density_matrix=True).density_matrix
        result = state_tomography(qc, device=toronto, partition=(0, 1),
                                  mitigate_readout=True)
        assert state_fidelity(exact, result.density_matrix) > 0.98

    def test_unmitigated_reconstruction_includes_readout_channel(
            self, toronto):
        """Without mitigation the reconstruction is attenuated by the
        measurement confusion — strictly farther from the ideal state."""
        from repro.sim import simulate_statevector

        sv = simulate_statevector(bell_pair())
        raw = state_tomography(bell_pair(), device=toronto,
                               partition=(0, 1))
        mitigated = state_tomography(bell_pair(), device=toronto,
                                     partition=(0, 1),
                                     mitigate_readout=True)
        assert state_fidelity(sv, mitigated.density_matrix) > \
            state_fidelity(sv, raw.density_matrix)

    def test_too_many_qubits_rejected(self):
        with pytest.raises(ValueError):
            state_tomography(ghz_circuit(4))

    def test_trace_one_and_psd(self, toronto):
        result = state_tomography(ghz_circuit(2), device=toronto,
                                  partition=(4, 7))
        rho = result.density_matrix
        assert np.trace(rho).real == pytest.approx(1.0)
        assert np.linalg.eigvalsh(rho).min() >= -1e-10

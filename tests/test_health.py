"""Circuit-breaker unit tests + scheduler integration: trip on failure
bursts, re-queue in-flight work to survivors, readmit after half-open
probes — all deterministic under replay."""

import pytest

from repro.core import (
    BreakerState,
    CircuitBreaker,
    CloudScheduler,
    DeviceFailurePlan,
    FailureBurst,
    FleetHealth,
    HealthPolicy,
    SubmittedProgram,
)
from repro.hardware import DeviceFleet, linear_device
from repro.workloads import workload


def _fleet(n=2):
    # Distinct sizes => distinct names (linear5, linear6, ...), so
    # bursts can be resolved by device name unambiguously.
    return DeviceFleet([linear_device(5 + i, seed=i) for i in range(n)])


def _stream(num, gap_ns=1e6):
    qc = workload("bell").circuit()
    return [SubmittedProgram(qc, arrival_ns=i * gap_ns, user=f"u{i % 3}")
            for i in range(num)]


class TestHealthPolicy:
    def test_defaults_valid(self):
        policy = HealthPolicy()
        assert policy.failure_threshold == 3
        assert policy.cooldown_ns > 0

    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"window": -1},
        {"max_error_rate": 0.0},
        {"max_error_rate": 1.5},
        {"cooldown_ns": 0.0},
        {"probe_successes": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HealthPolicy(**kwargs)


class TestCircuitBreaker:
    def test_consecutive_failures_trip(self):
        b = CircuitBreaker(HealthPolicy(failure_threshold=3))
        assert not b.record_failure(1.0)
        assert not b.record_failure(2.0)
        assert b.record_failure(3.0)  # third consecutive -> trip
        assert b.state is BreakerState.OPEN
        assert not b.admits

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker(HealthPolicy(failure_threshold=2))
        b.record_failure(1.0)
        b.record_success(2.0)
        assert not b.record_failure(3.0)  # streak restarted
        assert b.state is BreakerState.CLOSED

    def test_error_rate_trips_flapping_device(self):
        # Alternating success/failure never hits the consecutive
        # threshold but exceeds the 50% window rate once the window
        # fills (strictly more failures than successes).
        policy = HealthPolicy(failure_threshold=10, window=4,
                              max_error_rate=0.5)
        b = CircuitBreaker(policy)
        b.record_failure(1.0)
        b.record_success(2.0)
        b.record_failure(3.0)
        assert b.state is BreakerState.CLOSED  # window not full yet
        assert b.record_failure(4.0)  # window [F,S,F,F]: 75% > 50%
        assert b.state is BreakerState.OPEN

    def test_partial_window_never_trips_rate(self):
        policy = HealthPolicy(failure_threshold=10, window=8,
                              max_error_rate=0.5)
        b = CircuitBreaker(policy)
        for t in range(3):
            assert not b.record_failure(float(t))
        assert b.state is BreakerState.CLOSED

    def test_half_open_probes_readmit(self):
        policy = HealthPolicy(failure_threshold=1, probe_successes=2)
        b = CircuitBreaker(policy)
        assert b.record_failure(1.0)
        b.cooldown_elapsed(2.0)
        assert b.state is BreakerState.HALF_OPEN
        assert b.admits and b.probing
        assert not b.record_success(3.0)  # one probe is not enough
        assert b.record_success(4.0)      # second closes it
        assert b.state is BreakerState.CLOSED
        assert b.readmissions == 1

    def test_failed_probe_retrips(self):
        policy = HealthPolicy(failure_threshold=1, probe_successes=2)
        b = CircuitBreaker(policy)
        b.record_failure(1.0)
        b.cooldown_elapsed(2.0)
        b.record_success(3.0)
        assert b.record_failure(4.0)  # one bad probe -> re-quarantined
        assert b.state is BreakerState.OPEN
        assert b.trips == 2

    def test_summary_counts(self):
        b = CircuitBreaker(HealthPolicy(failure_threshold=1))
        b.record_failure(1.0)
        summary = b.summary()
        assert summary["state"] == "open"
        assert summary["trips"] == 1
        assert summary["failures"] == 1


class TestFleetHealth:
    def test_indexing_and_aggregates(self):
        health = FleetHealth(3, HealthPolicy(failure_threshold=1))
        health[1].record_failure(1.0)
        assert health.trips == 1
        assert len(health) == 3
        assert set(health.summary()) == {"0", "1", "2"}

    def test_needs_a_device(self):
        with pytest.raises(ValueError):
            FleetHealth(0, HealthPolicy())


class TestFailurePlan:
    def test_burst_validation(self):
        with pytest.raises(ValueError):
            FailureBurst(0, start_ns=-1.0)
        with pytest.raises(ValueError):
            FailureBurst(0, start_ns=5.0, until_ns=5.0)

    def test_resolve_by_name_and_index(self):
        fleet = _fleet(2)
        plan = DeviceFailurePlan.burst(fleet[0].name, 0.0, 1e6) \
            .with_burst(1, 2e6)
        resolved = plan.resolve(fleet)
        assert [r.device_index for r in resolved] == [0, 1]
        assert resolved[0].covers(0, 5e5)
        assert not resolved[0].covers(1, 5e5)
        assert not resolved[0].covers(0, 1e6)  # end-exclusive

    def test_permanent_burst_covers_forever(self):
        plan = DeviceFailurePlan.burst(0, 1e6)
        resolved = plan.resolve(_fleet(1))
        assert resolved[0].covers(0, 1e12)

    def test_empty_plan_is_falsy(self):
        assert not DeviceFailurePlan()
        assert DeviceFailurePlan.burst(0, 0.0)


class TestSchedulerBreakerIntegration:
    def _schedule(self, plan=None, policy=None, num=30):
        scheduler = CloudScheduler(
            _fleet(2), batch_window_ns=0.0, max_batch_size=1,
            failure_plan=plan, health_policy=policy)
        return scheduler.schedule(_stream(num))

    def test_healthy_fleet_untouched(self):
        out = self._schedule()
        assert out.batch_failures == 0
        assert out.breaker_trips == 0
        assert out.breakers == {}

    def test_burst_trips_requeues_and_readmits(self):
        policy = HealthPolicy(failure_threshold=2, cooldown_ns=3e6,
                              probe_successes=2)
        plan = DeviceFailurePlan.burst(0, 0.0, 2.2e7)
        out = self._schedule(plan, policy)
        assert out.batch_failures > 0
        assert out.breaker_trips >= 1
        assert out.breaker_readmissions >= 1
        # Every program still completes: failed batches re-queue to the
        # survivor (or to the readmitted device after its probes).
        assert len(out.completion_ns) == 30
        assert out.breakers["0"]["trips"] == out.breaker_trips

    def test_in_flight_requeue_lands_on_survivor(self):
        policy = HealthPolicy(failure_threshold=1, cooldown_ns=1e9,
                              probe_successes=1)
        plan = DeviceFailurePlan.burst(0, 0.0, 5e6)
        scheduler = CloudScheduler(
            _fleet(2), batch_window_ns=0.0, max_batch_size=1,
            failure_plan=plan, health_policy=policy)
        out = scheduler.schedule(_stream(10, gap_ns=2e5))
        assert len(out.completion_ns) == 10
        # After the (long-cooldown) trip everything runs on device 1.
        post_trip = [j for j in out.jobs if j.start_ns > 1e6]
        assert post_trip and all(
            j.device_name == scheduler.fleet[1].name for j in post_trip)

    def test_permanent_burst_quarantines_forever(self):
        policy = HealthPolicy(failure_threshold=1, cooldown_ns=1e6,
                              probe_successes=1)
        plan = DeviceFailurePlan.burst(0, 0.0)  # never recovers
        out = self._schedule(plan, policy, num=20)
        assert len(out.completion_ns) == 20
        assert out.breakers["0"]["state"] == "open"
        assert out.breaker_readmissions == 0

    def test_default_policy_activates_with_plan(self):
        # failure_plan without an explicit policy turns breakers on.
        plan = DeviceFailurePlan.burst(0, 0.0, 8e6)
        scheduler = CloudScheduler(_fleet(2), batch_window_ns=0.0,
                                   max_batch_size=1, failure_plan=plan)
        out = scheduler.schedule(_stream(20))
        assert out.breakers  # summary present => breakers were live

    def test_replay_bit_identical(self):
        policy = HealthPolicy(failure_threshold=2, cooldown_ns=3e6,
                              probe_successes=2)
        plan = DeviceFailurePlan.burst(0, 0.0, 2.2e7)
        first = self._schedule(plan, policy)
        second = self._schedule(plan, policy)
        assert first.to_dict() == second.to_dict()

    def test_outcome_dict_carries_breaker_fields(self):
        policy = HealthPolicy(failure_threshold=1, cooldown_ns=3e6)
        plan = DeviceFailurePlan.burst(0, 0.0, 5e6)
        payload = self._schedule(plan, policy).to_dict()
        assert "batch_failures" in payload
        assert "breaker_trips" in payload
        assert "breakers" in payload


class TestPriorityAging:
    def test_aging_validation(self):
        with pytest.raises(ValueError):
            CloudScheduler(_fleet(1), priority_aging_ns=0.0)

    def test_aging_prevents_tail_starvation(self):
        """Under sustained overload, aging interleaves best-effort work
        with the interactive flood instead of serving it dead last."""
        qc = workload("bell").circuit()
        subs = []
        for i in range(40):
            # 3 interactive arrivals per best-effort one, saturating.
            user = "vip" if i % 4 else "cheap"
            priority = 20 if user == "vip" else 0
            subs.append(SubmittedProgram(
                qc, arrival_ns=i * 2.5e5, user=user, priority=priority))

        def turnarounds(aging):
            scheduler = CloudScheduler(
                _fleet(2), batch_window_ns=0.0, max_batch_size=1,
                priority_aging_ns=aging)
            out = scheduler.schedule(subs)
            assert len(out.completion_ns) == len(subs)
            per_user = {"vip": [], "cheap": []}
            for i, sub in enumerate(subs):
                per_user[sub.user].append(
                    out.completion_ns[i] - sub.arrival_ns)
            return per_user

        strict = turnarounds(None)
        # Both classes age at the same rate, so a queued best-effort
        # program overtakes interactive work that arrived more than
        # priority_gap * aging ns later: 20 * 2e5 = 4e6 ns, well inside
        # the 1e7 ns arrival span.
        aged = turnarounds(2e5)
        assert max(aged["cheap"]) < max(strict["cheap"])
        assert sum(aged["cheap"]) < sum(strict["cheap"])

    def test_no_aging_is_bitwise_legacy(self):
        subs = _stream(20)
        base = CloudScheduler(_fleet(2), batch_window_ns=0.0)
        legacy = base.schedule(subs).to_dict()
        # Explicit None must not perturb the event order.
        again = CloudScheduler(_fleet(2), batch_window_ns=0.0,
                               priority_aging_ns=None).schedule(subs)
        assert again.to_dict() == legacy

"""Unit tests for the core execution pipeline (allocate -> run -> score)."""

import pytest

from repro.core import execute_allocation, qucp_allocate
from repro.core.executor import ExecutionOutcome
from repro.sim import ideal_probabilities
from repro.workloads import workload


class TestExecuteAllocation:
    def test_outcomes_in_input_order(self, toronto):
        circuits = [workload(n).circuit() for n in ("lin", "alu", "adder")]
        alloc = qucp_allocate(circuits, toronto)
        outcomes = execute_allocation(alloc, shots=256, seed=0)
        assert [o.allocation.index for o in outcomes] == [0, 1, 2]
        assert [o.allocation.circuit.name for o in outcomes] == [
            "linearsolver", "alu-v0_27", "adder"]

    def test_counts_match_shots(self, toronto):
        circuits = [workload("adder").circuit()]
        alloc = qucp_allocate(circuits, toronto)
        out = execute_allocation(alloc, shots=512, seed=1)[0]
        assert sum(out.result.counts.values()) == 512

    def test_seeded_reproducibility(self, toronto):
        circuits = [workload("adder").circuit() for _ in range(2)]
        alloc = qucp_allocate(circuits, toronto)
        a = execute_allocation(alloc, shots=256, seed=42)
        b = execute_allocation(alloc, shots=256, seed=42)
        for x, y in zip(a, b):
            assert x.result.counts == y.result.counts

    def test_ideal_reference_matches_logical_circuit(self, toronto):
        circuit = workload("lin").circuit()
        alloc = qucp_allocate([circuit], toronto)
        out = execute_allocation(alloc, shots=16, seed=0)[0]
        assert out.ideal == pytest.approx(ideal_probabilities(circuit))

    def test_pst_uses_most_likely_ideal_outcome(self, toronto):
        circuit = workload("adder").circuit()
        alloc = qucp_allocate([circuit], toronto)
        out = execute_allocation(alloc, shots=0, seed=0)[0]
        expected = max(out.ideal, key=out.ideal.get)
        assert out.pst() == pytest.approx(
            out.result.probabilities.get(expected, 0.0))

    def test_jsd_zero_for_noiseless(self, toronto):
        circuit = workload("lin").circuit()
        alloc = qucp_allocate([circuit], toronto)
        out = execute_allocation(alloc, shots=0, seed=0,
                                 include_crosstalk=False)[0]
        # Still noisy (gate errors) so JSD > 0, but small and finite.
        assert 0.0 < out.jsd() < 0.5

    def test_custom_transpiler_hook_called(self, toronto):
        calls = []

        def spy_transpiler(circuit, device, allocation):
            from repro.transpiler import transpile_for_partition

            calls.append(allocation.index)
            return transpile_for_partition(circuit, device,
                                           allocation.partition)

        circuits = [workload("adder").circuit() for _ in range(2)]
        alloc = qucp_allocate(circuits, toronto)
        execute_allocation(alloc, shots=16, seed=0,
                           transpiler_fn=spy_transpiler)
        assert sorted(calls) == [0, 1]

    def test_transpiled_circuits_fit_partitions(self, toronto):
        circuits = [workload(n).circuit() for n in ("qec", "bell")]
        alloc = qucp_allocate(circuits, toronto)
        outcomes = execute_allocation(alloc, shots=16, seed=0)
        for out in outcomes:
            assert (out.transpiled.circuit.num_qubits
                    == len(out.allocation.partition))

"""The layered compile-cache subsystem: memory LRU tier, SQLite WAL
persistent tier (including corruption fallback and cross-process
sharing), tier composition behind ExecutionCache, and the import shims
that keep the pre-refactor entry points working."""

import multiprocessing
import sqlite3

import pytest

import repro.cache as cache_pkg
from repro.cache import (
    MemoryCache,
    PersistentCache,
    circuit_key,
    index_sensitive_transpiler,
)
from repro.core import CompileService, ExecutionCache, qucp_allocate
from repro.core import executor as executor_mod
from repro.core import index_sensitive_transpiler as core_ist
from repro.core.executor import _default_transpiler
from repro.workloads import workload


def _allocation(device, names=("lin", "adder")):
    circuits = [workload(n).circuit() for n in names]
    return qucp_allocate(circuits, device)


class TestMemoryCache:
    def test_roundtrip_and_counters(self):
        mem = MemoryCache()
        assert mem.get("a") is None
        mem.put("a", 1)
        assert mem.get("a") == 1
        assert mem.stats == {"hits": 1, "misses": 1, "evictions": 0,
                             "entries": 1}

    def test_lru_eviction_order(self):
        mem = MemoryCache(max_entries=2)
        mem.put("a", 1)
        mem.put("b", 2)
        assert mem.get("a") == 1  # refresh "a": "b" is now LRU
        mem.put("c", 3)
        assert "b" not in mem
        assert mem.get("a") == 1
        assert mem.get("c") == 3
        assert mem.evictions == 1

    def test_replacing_existing_key_does_not_evict(self):
        mem = MemoryCache(max_entries=2)
        mem.put("a", 1)
        mem.put("b", 2)
        mem.put("a", 10)
        assert len(mem) == 2
        assert mem.evictions == 0
        assert mem.get("a") == 10

    def test_zero_cap_stores_nothing(self):
        mem = MemoryCache(max_entries=0)
        mem.put("a", 1)
        assert len(mem) == 0
        assert mem.get("a") is None

    def test_clear_keeps_counters(self):
        mem = MemoryCache()
        mem.put("a", 1)
        mem.get("a")
        mem.clear()
        assert len(mem) == 0
        assert mem.hits == 1


class TestPersistentCache:
    def test_roundtrip_and_reopen(self, tmp_path):
        path = str(tmp_path / "store.db")
        store = PersistentCache(path)
        store.put("k1", b"payload-1", "inv-a")
        store.put("k2", b"payload-2", "inv-a")
        assert store.get("k1") == b"payload-1"
        assert len(store) == 2
        assert store.invariant_classes() == {"inv-a": 2}
        store.close()
        # A second connection (as another process would open) sees the
        # committed rows.
        again = PersistentCache(path)
        assert again.get("k2") == b"payload-2"
        assert again.get("missing") is None
        assert again.stats["hits"] == 1
        assert again.stats["misses"] == 1
        again.close()

    def test_delete_and_clear(self, tmp_path):
        store = PersistentCache(str(tmp_path / "store.db"))
        store.put("k1", b"x")
        store.put("k2", b"y")
        store.delete("k1")
        assert store.get("k1") is None
        store.clear()
        assert len(store) == 0

    def test_garbage_file_disables_with_warning(self, tmp_path):
        path = tmp_path / "store.db"
        path.write_bytes(b"this is not a sqlite database at all")
        with pytest.warns(RuntimeWarning, match="unusable"):
            store = PersistentCache(str(path))
        assert store.disabled
        # Disabled store degrades to misses/no-ops, never crashes.
        store.put("k", b"v")
        assert store.get("k") is None
        assert len(store) == 0

    def test_truncated_store_falls_back_cold(self, tmp_path):
        path = tmp_path / "store.db"
        store = PersistentCache(str(path))
        for i in range(20):
            store.put(f"k{i}", b"x" * 512)
        store.close()
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.warns(RuntimeWarning, match="unusable"):
            reopened = PersistentCache(str(path))
            # Init may survive truncation (header intact); the first
            # query then hits the torn pages.  Either way: warn + miss.
            assert reopened.get("k0") is None
        assert reopened.disabled

    def test_newer_schema_left_untouched(self, tmp_path):
        path = str(tmp_path / "store.db")
        PersistentCache(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '999' "
                     "WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.warns(RuntimeWarning, match="schema"):
            store = PersistentCache(path)
        assert store.disabled


def _spawn_writer(path, worker_id, n_entries):
    """Write one worker's slice plus the shared key (spawn target)."""
    from repro.cache import PersistentCache

    store = PersistentCache(path)
    for i in range(n_entries):
        store.put(f"w{worker_id}-k{i}", f"w{worker_id}-v{i}".encode(),
                  f"class-{i % 3}")
    store.put("shared", b"shared-value", "class-shared")
    read_back = store.get(f"w{worker_id}-k0")
    store.close()
    return read_back


class TestCrossProcessStore:
    def test_two_processes_share_one_wal_store(self, tmp_path):
        path = str(tmp_path / "shared.db")
        n = 25
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(2) as pool:
            results = pool.starmap(_spawn_writer,
                                   [(path, 0, n), (path, 1, n)])
        assert results == [b"w0-v0", b"w1-v0"]
        store = PersistentCache(path)
        assert len(store) == 2 * n + 1
        for wid in (0, 1):
            for i in range(n):
                assert store.get(f"w{wid}-k{i}") == \
                    f"w{wid}-v{i}".encode()
        assert store.get("shared") == b"shared-value"
        store.close()


class TestTieredExecutionCache:
    def _key(self, cache, alloc, device):
        return cache.transpile_key(alloc.circuit, device, alloc,
                                   _default_transpiler)

    def test_persistable_key_has_digest(self, toronto):
        cache = ExecutionCache()
        alloc = _allocation(toronto, names=("lin",)).allocations[0]
        key = self._key(cache, alloc, toronto)
        assert key.digest is not None
        assert key.invariants is not None

    def test_undeclared_hook_not_persisted(self, toronto, tmp_path):
        def hook(circuit, device, allocation):  # no persistent token
            return _default_transpiler(circuit, device, allocation)

        cache = ExecutionCache(store_path=str(tmp_path / "s.db"))
        alloc = _allocation(toronto, names=("lin",)).allocations[0]
        key = cache.transpile_key(alloc.circuit, toronto, alloc, hook)
        assert key.digest is None
        result = cache.transpile(alloc.circuit, toronto, alloc, hook)
        assert result is not None
        assert len(cache.persistent) == 0

    def test_warm_store_serves_cold_cache(self, toronto, tmp_path):
        path = str(tmp_path / "store.db")
        alloc = _allocation(toronto, names=("lin",)).allocations[0]
        warm = ExecutionCache(store_path=path)
        compiled = warm.transpile(alloc.circuit, toronto, alloc,
                                  _default_transpiler)
        assert len(warm.persistent) == 1

        cold = ExecutionCache(store_path=path)
        key = self._key(cold, alloc, toronto)
        served = cold.lookup_transpile_raw(key, toronto,
                                           _default_transpiler)
        assert served is not None
        assert circuit_key(served.circuit) == \
            circuit_key(compiled.circuit)
        assert served.initial_layout.as_dict() == \
            compiled.initial_layout.as_dict()
        assert cold.stats["promotions"] == 1
        # Promotion populated L1: the next lookup skips the store.
        persistent_hits = cold.persistent.hits
        assert cold.lookup_transpile_raw(key, toronto,
                                         _default_transpiler) is not None
        assert cold.persistent.hits == persistent_hits

    def test_corrupt_row_recompiles_and_heals(self, toronto, tmp_path):
        path = str(tmp_path / "store.db")
        cache = ExecutionCache(store_path=path)
        alloc = _allocation(toronto, names=("lin",)).allocations[0]
        key = self._key(cache, alloc, toronto)
        cache.persistent.put(key.digest, b"not a pickle", "inv")
        cold = ExecutionCache(store_path=path)
        assert cold.lookup_transpile_raw(key, toronto,
                                         _default_transpiler) is None
        assert cold.tiers.stats["decode_errors"] == 1
        # The torn row was dropped; a real compile republishes it.
        result = cold.transpile(alloc.circuit, toronto, alloc,
                                _default_transpiler)
        assert result is not None
        assert len(cold.persistent) == 1
        healed = ExecutionCache(store_path=path)
        assert healed.lookup_transpile_raw(key, toronto,
                                           _default_transpiler) is not None

    def test_cold_service_on_warm_store_compiles_nothing(self, toronto,
                                                         tmp_path):
        path = str(tmp_path / "store.db")
        job = _allocation(toronto)
        with CompileService(mode="serial",
                            cache=ExecutionCache(store_path=path)) as warm:
            warm.compile_allocation(job)
            assert warm.stats["submitted"] == 2
        with CompileService(mode="serial",
                            cache=ExecutionCache(store_path=path)) as cold:
            cold.compile_allocation(job)
            assert cold.stats["submitted"] == 0
            assert cold.stats["promotions"] == 2

    def test_env_default_max_entries(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "17")
        assert ExecutionCache().max_entries == 17
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "-1")
        assert ExecutionCache().max_entries is None
        monkeypatch.delenv("REPRO_CACHE_MAX_ENTRIES")
        assert ExecutionCache().max_entries == executor_mod._DEFAULT_MAX_ENTRIES  # noqa: E501,SLF001
        assert ExecutionCache(max_entries=None).max_entries is None


class TestShims:
    def test_key_helpers_moved_but_reachable(self):
        assert executor_mod._circuit_key is cache_pkg.circuit_key  # noqa: SLF001
        assert executor_mod.index_sensitive_transpiler \
            is cache_pkg.index_sensitive_transpiler
        assert core_ist is index_sensitive_transpiler

    def test_index_sensitive_marking_unchanged(self):
        @index_sensitive_transpiler
        def hook(circuit, device, allocation):
            return None

        assert getattr(hook, "_observes_allocation_index")


class TestSingleCoreRouting:
    """``choose_route`` must never auto-pick *any* pool on a single-core
    (or unknown-core-count) host: measured there, threads run GIL-bound
    compiles at ~0.9x serial and the chunked process pool at ~0.6x, so
    the only route that never loses is serial."""

    def test_auto_mode_single_core_host(self, monkeypatch):
        monkeypatch.setattr("repro.core.compile_service.os.cpu_count",
                            lambda: 1)
        assert CompileService.choose_route(64, 65) == "serial"

    def test_auto_mode_unknown_core_count(self, monkeypatch):
        monkeypatch.setattr("repro.core.compile_service.os.cpu_count",
                            lambda: None)
        assert CompileService.choose_route(64, 65) == "serial"

    def test_cold_process_regression_batch_stays_serial_on_one_core(self):
        # The committed BENCH_transpile run that motivated the retune:
        # 150 heavy-tail programs on a 27q device, one core — explicit
        # process mode ran at 0.47x serial; auto must not repeat that.
        assert CompileService.choose_route(150, 27, cores=1) == "serial"
        assert CompileService.choose_route(48, 65, cores=1) == "serial"

    def test_multi_core_still_routes_to_process(self, monkeypatch):
        monkeypatch.setattr("repro.core.compile_service.os.cpu_count",
                            lambda: 4)
        assert CompileService.choose_route(64, 65) == "process"

    def test_multi_core_narrow_device_routes_to_threads(self):
        assert CompileService.choose_route(64, 27, cores=4) == "thread"

"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, gate, parse_qasm, random_circuit, to_qasm
from repro.circuits.gates import standard_gate_names
from repro.core import jensen_shannon_divergence, normalize_distribution, pst
from repro.mitigation import LinearFactory, RichardsonFactory, fold_gates_at_random
from repro.sim import (
    circuit_unitary,
    depolarizing_channel,
    simulate_density_matrix,
    simulate_statevector,
)
from repro.sim.noise_model import NoiseModel
from repro.transpiler import decompose_to_basis, optimize_circuit
from repro.vqe import PauliString

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

angles = st.floats(min_value=-2 * math.pi, max_value=2 * math.pi,
                   allow_nan=False, allow_infinity=False)

pauli_labels = st.text(alphabet="IXYZ", min_size=1, max_size=4)


@st.composite
def distributions(draw, min_keys=1, max_keys=8, width=3):
    n = draw(st.integers(min_keys, max_keys))
    keys = draw(st.lists(
        st.integers(0, 2 ** width - 1), min_size=n, max_size=n,
        unique=True))
    weights = draw(st.lists(
        st.floats(min_value=1e-6, max_value=1.0), min_size=n, max_size=n))
    return {format(k, f"0{width}b"): w for k, w in zip(keys, weights)}


@st.composite
def small_circuits(draw):
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(1, 4))
    depth = draw(st.integers(1, 6))
    return random_circuit(n, depth, seed=seed)


def _equiv_phase(u, v, tol=1e-7):
    k = np.argmax(np.abs(v))
    idx = np.unravel_index(k, v.shape)
    if abs(u[idx]) < 1e-12:
        return False
    phase = v[idx] / u[idx]
    return np.allclose(u * phase, v, atol=tol)


# ----------------------------------------------------------------------
# circuit / simulator invariants
# ----------------------------------------------------------------------


class TestCircuitProperties:
    @given(small_circuits())
    @settings(max_examples=40, deadline=None)
    def test_statevector_normalized(self, qc):
        sv = simulate_statevector(qc)
        assert np.sum(np.abs(sv) ** 2) == pytest.approx(1.0, abs=1e-9)

    @given(small_circuits())
    @settings(max_examples=25, deadline=None)
    def test_inverse_restores_identity(self, qc):
        u = circuit_unitary(qc)
        u_inv = circuit_unitary(qc.inverse())
        assert np.allclose(u_inv @ u, np.eye(u.shape[0]), atol=1e-8)

    @given(small_circuits())
    @settings(max_examples=25, deadline=None)
    def test_qasm_round_trip(self, qc):
        back = parse_qasm(to_qasm(qc))
        assert np.allclose(circuit_unitary(qc), circuit_unitary(back),
                           atol=1e-8)

    @given(small_circuits())
    @settings(max_examples=25, deadline=None)
    def test_basis_decomposition_equivalent(self, qc):
        dec = decompose_to_basis(qc)
        assert set(dec.count_ops()) <= {"rz", "sx", "x", "cx"}
        assert _equiv_phase(circuit_unitary(qc), circuit_unitary(dec))

    @given(small_circuits(), st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_optimization_preserves_semantics(self, qc, level):
        dec = decompose_to_basis(qc)
        opt = optimize_circuit(dec, level)
        assert opt.size() <= dec.size()
        assert _equiv_phase(circuit_unitary(dec), circuit_unitary(opt))

    @given(small_circuits())
    @settings(max_examples=20, deadline=None)
    def test_depth_bounded_by_size(self, qc):
        assert qc.depth() <= qc.size()


class TestDensityMatrixProperties:
    @given(small_circuits(),
           st.floats(min_value=0.0, max_value=0.08))
    @settings(max_examples=20, deadline=None)
    def test_trace_and_positivity_under_noise(self, qc, err):
        n = qc.num_qubits
        nm = NoiseModel(
            oneq_error={q: err / 10 for q in range(n)},
            twoq_error={(a, b): err for a in range(n)
                        for b in range(a + 1, n)},
        )
        rho = simulate_density_matrix(qc, nm)
        assert np.trace(rho).real == pytest.approx(1.0, abs=1e-8)
        assert np.linalg.eigvalsh(rho).min() > -1e-8
        assert np.allclose(rho, rho.conj().T, atol=1e-10)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(1, 2))
    @settings(max_examples=30, deadline=None)
    def test_depolarizing_is_cptp(self, p, nq):
        ch = depolarizing_channel(p, nq)
        d = 2 ** nq
        total = sum(op.conj().T @ op for op in ch.operators)
        assert np.allclose(total, np.eye(d), atol=1e-9)


# ----------------------------------------------------------------------
# metric invariants
# ----------------------------------------------------------------------


class TestMetricProperties:
    @given(distributions(), distributions())
    @settings(max_examples=60, deadline=None)
    def test_jsd_bounds_and_symmetry(self, p, q):
        jsd_pq = jensen_shannon_divergence(p, q)
        jsd_qp = jensen_shannon_divergence(q, p)
        assert 0.0 <= jsd_pq <= 1.0
        assert jsd_pq == pytest.approx(jsd_qp, abs=1e-9)

    @given(distributions())
    @settings(max_examples=40, deadline=None)
    def test_jsd_identity_is_zero(self, p):
        assert jensen_shannon_divergence(p, p) == pytest.approx(0.0,
                                                                abs=1e-9)

    @given(distributions())
    @settings(max_examples=40, deadline=None)
    def test_pst_in_unit_interval(self, p):
        key = next(iter(p))
        assert 0.0 <= pst(p, key) <= 1.0

    @given(distributions())
    @settings(max_examples=40, deadline=None)
    def test_normalization_sums_to_one(self, p):
        norm = normalize_distribution(p)
        assert sum(norm.values()) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Pauli algebra invariants
# ----------------------------------------------------------------------


class TestPauliProperties:
    @given(pauli_labels)
    @settings(max_examples=40, deadline=None)
    def test_self_product_is_identity(self, label):
        p = PauliString(label)
        phase, result = p * p
        assert phase == 1.0
        assert result.is_identity

    @given(pauli_labels, pauli_labels)
    @settings(max_examples=40, deadline=None)
    def test_product_matches_matrix_product(self, a_label, b_label):
        if len(a_label) != len(b_label):
            b_label = (b_label * len(a_label))[:len(a_label)]
        a, b = PauliString(a_label), PauliString(b_label)
        phase, result = a * b
        assert np.allclose(phase * result.matrix(),
                           a.matrix() @ b.matrix(), atol=1e-10)

    @given(pauli_labels, pauli_labels)
    @settings(max_examples=40, deadline=None)
    def test_commutation_matches_matrices(self, a_label, b_label):
        if len(a_label) != len(b_label):
            b_label = (b_label * len(a_label))[:len(a_label)]
        a, b = PauliString(a_label), PauliString(b_label)
        commutator = (a.matrix() @ b.matrix()
                      - b.matrix() @ a.matrix())
        assert a.commutes_with(b) == np.allclose(commutator, 0,
                                                 atol=1e-10)

    @given(pauli_labels, pauli_labels)
    @settings(max_examples=40, deadline=None)
    def test_qwc_implies_commuting(self, a_label, b_label):
        if len(a_label) != len(b_label):
            b_label = (b_label * len(a_label))[:len(a_label)]
        a, b = PauliString(a_label), PauliString(b_label)
        if a.qubit_wise_commutes_with(b):
            assert a.commutes_with(b)


# ----------------------------------------------------------------------
# folding / extrapolation invariants
# ----------------------------------------------------------------------


class TestMitigationProperties:
    @given(small_circuits(),
           st.floats(min_value=1.0, max_value=4.0),
           st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_folding_preserves_unitary(self, qc, scale, seed):
        folded = fold_gates_at_random(qc, scale, seed=seed)
        assert _equiv_phase(circuit_unitary(qc), circuit_unitary(folded))

    @given(small_circuits(),
           st.floats(min_value=1.0, max_value=4.0),
           st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_folding_gate_count_law(self, qc, scale, seed):
        folded = fold_gates_at_random(qc, scale, seed=seed)
        assert folded.size() == pytest.approx(scale * qc.size(), abs=2.0)

    @given(st.floats(min_value=-1, max_value=1),
           st.floats(min_value=-0.5, max_value=0.5))
    @settings(max_examples=40, deadline=None)
    def test_linear_factory_exact_on_lines(self, intercept, slope):
        scales = [1.0, 1.5, 2.0, 2.5]
        values = [intercept + slope * s for s in scales]
        est = LinearFactory().extrapolate(scales, values)
        assert est == pytest.approx(intercept, abs=1e-8)

    @given(st.lists(st.floats(min_value=-1, max_value=1),
                    min_size=3, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_richardson_passes_through_points(self, values):
        scales = [1.0, 2.0, 3.0]
        coeffs = np.polyfit(scales, values, 2)
        est = RichardsonFactory().extrapolate(scales, values)
        assert est == pytest.approx(float(np.polyval(coeffs, 0.0)),
                                    abs=1e-6)

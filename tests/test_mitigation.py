"""Unit tests for folding, factories, and the ZNE drivers."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.mitigation import (
    LinearFactory,
    PolyFactory,
    RichardsonFactory,
    fold_gates_at_random,
    fold_global,
    folded_scale_factors,
    parity_expectation,
    zero_noise_estimate,
)
from repro.sim import circuit_unitary


def _equiv_phase(u, v, tol=1e-8):
    k = np.argmax(np.abs(v))
    idx = np.unravel_index(k, v.shape)
    phase = v[idx] / u[idx]
    return np.allclose(u * phase, v, atol=tol)


class TestFolding:
    def test_scale_one_is_identity_transform(self):
        qc = ghz_circuit(3)
        folded = fold_gates_at_random(qc, 1.0, seed=0)
        assert folded.size() == qc.size()

    def test_gate_count_scales(self):
        qc = ghz_circuit(4)
        n = qc.size()
        for scale in (1.5, 2.0, 2.5, 3.0):
            folded = fold_gates_at_random(qc, scale, seed=1)
            assert folded.size() == pytest.approx(scale * n, abs=1.9)

    def test_semantics_preserved(self):
        from repro.circuits import random_circuit

        qc = random_circuit(3, 5, seed=17)
        for scale in (1.5, 2.0, 3.0):
            folded = fold_gates_at_random(qc, scale, seed=3)
            assert _equiv_phase(circuit_unitary(qc),
                                circuit_unitary(folded))

    def test_measurements_stay_at_end(self):
        qc = ghz_circuit(2).measure_all()
        folded = fold_gates_at_random(qc, 2.0, seed=0)
        names = [i.name for i in folded]
        first_measure = names.index("measure")
        assert all(n == "measure" for n in names[first_measure:])

    def test_scale_below_one_rejected(self):
        with pytest.raises(ValueError):
            fold_gates_at_random(ghz_circuit(2), 0.5)

    def test_global_fold_exact_odd_scales(self):
        qc = ghz_circuit(3)
        folded = fold_global(qc, 3.0)
        assert folded.size() == 3 * qc.size()
        assert _equiv_phase(circuit_unitary(qc), circuit_unitary(folded))

    def test_global_fold_fractional(self):
        qc = ghz_circuit(4)
        folded = fold_global(qc, 2.0)
        assert _equiv_phase(circuit_unitary(qc), circuit_unitary(folded))
        assert folded.size() > qc.size()

    def test_scale_factor_grid(self):
        assert folded_scale_factors() == (1.0, 1.5, 2.0, 2.5)


class TestFactories:
    def test_linear_recovers_line(self):
        scales = [1.0, 1.5, 2.0, 2.5]
        values = [0.9 - 0.1 * s for s in scales]
        assert LinearFactory().extrapolate(scales, values) == pytest.approx(
            0.9)

    def test_poly_recovers_quadratic(self):
        scales = [1.0, 1.5, 2.0, 2.5]
        values = [1.0 - 0.2 * s + 0.03 * s * s for s in scales]
        assert PolyFactory(order=2).extrapolate(
            scales, values) == pytest.approx(1.0, abs=1e-9)

    def test_richardson_interpolates_exactly(self):
        scales = [1.0, 1.5, 2.0]
        values = [0.8, 0.7, 0.55]
        est = RichardsonFactory().extrapolate(scales, values)
        # Degree-2 interpolating polynomial through the three points.
        coeffs = np.polyfit(scales, values, 2)
        assert est == pytest.approx(float(np.polyval(coeffs, 0.0)))

    def test_factories_need_enough_points(self):
        with pytest.raises(ValueError):
            LinearFactory().extrapolate([1.0], [0.5])
        with pytest.raises(ValueError):
            PolyFactory(order=2).extrapolate([1.0, 2.0], [0.5, 0.4])
        with pytest.raises(ValueError):
            RichardsonFactory().extrapolate([1.0, 1.0], [0.5, 0.4])

    def test_best_of_selection(self):
        scales = [1.0, 1.5, 2.0, 2.5]
        values = [0.9 - 0.1 * s for s in scales]
        est, name = zero_noise_estimate(scales, values, ideal=0.9)
        assert est == pytest.approx(0.9, abs=1e-9)

    def test_default_factory_is_richardson(self):
        scales = [1.0, 1.5, 2.0, 2.5]
        values = [0.9 - 0.1 * s for s in scales]
        _, name = zero_noise_estimate(scales, values)
        assert name == "richardson"


class TestParity:
    def test_even_parity_positive(self):
        assert parity_expectation({"00": 1.0}) == 1.0
        assert parity_expectation({"11": 1.0}) == 1.0

    def test_odd_parity_negative(self):
        assert parity_expectation({"01": 1.0}) == -1.0

    def test_mixture(self):
        assert parity_expectation({"00": 0.5, "01": 0.5}) == 0.0


class TestZNEEndToEnd:
    def test_zne_reduces_error_under_noise(self, toronto):
        """On a deterministic benchmark, mitigated error < unmitigated."""
        from repro.workloads import workload
        from repro.mitigation import run_zne_comparison

        qc = workload("fredkin").circuit()
        cmp = run_zne_comparison(qc, toronto, shots=0, seed=7)
        assert cmp.zne_error < cmp.baseline_error
        assert cmp.qucp_zne_error <= cmp.baseline_error + 0.05

    def test_comparison_reports_throughput_gain(self, manhattan):
        from repro.workloads import workload
        from repro.mitigation import run_zne_comparison

        qc = workload("linearsolver").circuit()
        cmp = run_zne_comparison(qc, manhattan, shots=0, seed=3)
        # Four folded 3q circuits at once: 12/65 qubits.
        assert cmp.qucp_zne_throughput == pytest.approx(12 / 65)

    def test_unmeasured_circuit_rejected(self, toronto):
        from repro.mitigation import run_zne_comparison

        with pytest.raises(ValueError):
            run_zne_comparison(ghz_circuit(2), toronto)

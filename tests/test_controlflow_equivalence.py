"""Randomized equivalence: unrolled vs feed-forward dynamic execution.

The contract the dynamic subsystem guarantees: on statically-resolvable
circuits, executing through :func:`run_dynamic` is **bit-identical**
(same seed, same counts) to statically unrolling with
:func:`expand_control_flow` and running the flat circuit through the
ordinary distribution-sampling simulator — noise included.  On genuinely
data-dependent circuits the per-shot trajectory engine must agree with
the exact tree walk to within sampling noise.
"""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.sim import (
    NoiseModel,
    dynamic_probabilities,
    ideal_probabilities,
    run_circuit,
    run_dynamic,
)
from repro.transpiler import expand_control_flow, is_statically_resolvable

#: 1-2 qubit pool; control-flow bodies draw from the same pool.
GATE_POOL = [
    ("h", 1, 0), ("x", 1, 0), ("s", 1, 0), ("sx", 1, 0),
    ("rx", 1, 1), ("ry", 1, 1), ("rz", 1, 1),
    ("cx", 2, 0), ("cz", 2, 0), ("rzz", 2, 1),
]


def _random_static(rng, qc, depth):
    pool = [g for g in GATE_POOL if g[1] <= qc.num_qubits]
    for _ in range(depth):
        name, arity, nparams = pool[rng.integers(len(pool))]
        qubits = rng.choice(qc.num_qubits, size=arity, replace=False)
        params = [float(rng.uniform(0, 2 * np.pi)) for _ in range(nparams)]
        qc._add(name, [int(q) for q in qubits], *params)


def _random_body(rng, n):
    body = QuantumCircuit(n, n)
    _random_static(rng, body, int(rng.integers(1, 4)))
    return body


def _random_resolvable(rng, n, blocks=4):
    """Random circuit mixing static runs with resolvable control flow.

    No measurement precedes any condition, so every branch is decided
    at compile time (clbits read 0): for-loops unroll, if/else splices
    one branch, initially-false whiles vanish.
    """
    qc = QuantumCircuit(n, n)
    for _ in range(blocks):
        _random_static(rng, qc, int(rng.integers(1, 4)))
        roll = rng.random()
        if roll < 0.35:
            qc.for_loop(range(int(rng.integers(1, 4))),
                        _random_body(rng, n))
        elif roll < 0.7:
            clbit = int(rng.integers(n))
            value = int(rng.integers(2))
            false = _random_body(rng, n) if rng.random() < 0.5 else None
            qc.if_test(([clbit], value), _random_body(rng, n), false)
        else:
            # Condition value 1 on an unwritten clbit: never entered.
            body = _random_body(rng, n)
            body.measure(int(rng.integers(n)), int(rng.integers(n)))
            qc.while_loop(([int(rng.integers(n))], 1), body)
    for q in range(n):
        qc.measure(q, q)
    return qc


def _noise(n):
    return NoiseModel(
        oneq_error={q: 1e-3 + 1e-4 * q for q in range(n)},
        twoq_error={(a, b): 0.01 + 0.002 * (a + b)
                    for a in range(n) for b in range(a + 1, n)},
        readout_error={q: (0.02, 0.01) for q in range(n)},
        t1={q: 80_000.0 for q in range(n)},
        t2={q: 70_000.0 for q in range(n)},
    )


def _tv(p, q):
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0))
                     for k in set(p) | set(q))


class TestResolvableBitIdentical:
    @pytest.mark.parametrize("seed", range(10))
    def test_counts_bit_identical_with_noise(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        qc = _random_resolvable(rng, n)
        assert is_statically_resolvable(qc)
        nm = _noise(n)
        via_dynamic = run_dynamic(qc, noise_model=nm, shots=400,
                                  seed=1234 + seed)
        via_flat = run_circuit(expand_control_flow(qc), noise_model=nm,
                               shots=400, seed=1234 + seed)
        assert via_dynamic.counts == via_flat.counts
        assert via_dynamic.measured_clbits == via_flat.measured_clbits

    @pytest.mark.parametrize("seed", range(6))
    def test_exact_distributions_match(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 4))
        qc = _random_resolvable(rng, n)
        exact = dynamic_probabilities(qc)
        flat = ideal_probabilities(expand_control_flow(qc))
        for key in set(exact) | set(flat):
            assert exact.get(key, 0.0) == pytest.approx(
                flat.get(key, 0.0), abs=1e-9)


class TestFeedForwardAgainstTreeWalk:
    @pytest.mark.parametrize("seed", range(4))
    def test_conditional_trajectories_match_exact(self, seed):
        """Mid-circuit measure feeding an if/else: empirical TV small."""
        rng = np.random.default_rng(200 + seed)
        n = 2
        qc = QuantumCircuit(n, n)
        _random_static(rng, qc, 3)
        qc.measure(0, 0)
        fix = _random_body(rng, n)
        other = _random_body(rng, n)
        qc.if_test(([0], 1), fix, other)
        qc.measure(1, 1)
        exact = dynamic_probabilities(qc)
        empirical = run_dynamic(qc, shots=3000,
                                seed=77 + seed).probabilities
        assert _tv(exact, empirical) < 0.08

    def test_same_seed_reproduces_trajectories(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.measure(0, 0)
        fix = QuantumCircuit(2, 2)
        fix.x(1)
        qc.if_test(([0], 1), fix)
        qc.measure(1, 1)
        a = run_dynamic(qc, shots=200, seed=5)
        b = run_dynamic(qc, shots=200, seed=5)
        assert a.counts == b.counts

    def test_feedforward_correlates_branch_with_outcome(self):
        """The if-branch must fire exactly when its clbit read 1."""
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.measure(0, 0)
        fix = QuantumCircuit(2, 2)
        fix.x(1)
        qc.if_test(([0], 1), fix)
        qc.measure(1, 1)
        res = run_dynamic(qc, shots=500, seed=9)
        # Perfect correlation: only 00 and 11 appear (clbit order 0,1).
        assert set(res.counts) == {"00", "11"}

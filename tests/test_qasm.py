"""Unit tests for the OpenQASM 2.0 parser/writer."""

import math

import pytest

from repro.circuits import QasmError, QuantumCircuit, parse_qasm, to_qasm


SAMPLE = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2];
barrier q[0],q[1],q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
"""


class TestParsing:
    def test_basic_program(self):
        qc = parse_qasm(SAMPLE)
        assert qc.num_qubits == 3
        assert qc.num_clbits == 3
        ops = qc.count_ops()
        assert ops["h"] == 1
        assert ops["cx"] == 1
        assert ops["measure"] == 2

    def test_parameter_expression(self):
        qc = parse_qasm(SAMPLE)
        rz = next(i for i in qc if i.name == "rz")
        assert rz.params[0] == pytest.approx(math.pi / 4)

    def test_comments_stripped(self):
        qc = parse_qasm("qreg q[1]; // a comment\n x q[0]; /* block */")
        assert qc.count_ops() == {"x": 1}

    def test_register_broadcast(self):
        qc = parse_qasm("qreg q[3]; h q;")
        assert qc.count_ops()["h"] == 3

    def test_register_wide_measure(self):
        qc = parse_qasm("qreg q[2]; creg c[2]; measure q -> c;")
        assert qc.count_ops()["measure"] == 2

    def test_multiple_registers_flattened(self):
        qc = parse_qasm("qreg a[2]; qreg b[2]; cx a[1],b[0];")
        inst = qc[0]
        assert inst.qubits == (1, 2)

    def test_cnot_alias(self):
        qc = parse_qasm("qreg q[2]; cnot q[0],q[1];")
        assert qc[0].name == "cx"

    def test_unknown_register_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("qreg q[1]; x r[0];")

    def test_index_out_of_range_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("qreg q[1]; x q[3];")

    def test_malicious_parameter_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("qreg q[1]; rz(__import__('os')) q[0];")

    def test_unknown_symbol_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("qreg q[1]; rz(tau) q[0];")

    def test_duplicate_register_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("qreg q[1]; qreg q[2];")


class TestRoundTrip:
    def test_round_trip_preserves_semantics(self):
        import numpy as np

        from repro.circuits import random_circuit
        from repro.sim import circuit_unitary

        qc = random_circuit(3, 5, seed=11)
        back = parse_qasm(to_qasm(qc))
        u1 = circuit_unitary(qc)
        u2 = circuit_unitary(back)
        assert np.allclose(u1, u2, atol=1e-9)

    def test_round_trip_measures_and_barriers(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0).barrier().cx(0, 1).measure(0, 0).measure(1, 1)
        back = parse_qasm(to_qasm(qc))
        assert back.count_ops() == qc.count_ops()
        measures = [(i.qubits, i.clbits) for i in back
                    if i.name == "measure"]
        assert measures == [((0,), (0,)), ((1,), (1,))]

    def test_writer_emits_header(self):
        text = to_qasm(QuantumCircuit(1))
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[1];" in text

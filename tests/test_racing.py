"""Hedged strategy racing: determinism, cancellation, and pool health.

The edge cases that make racing safe to leave on in production:

- equal scores resolve by candidate order, so the winner is
  deterministic and reproducible under a fixed seed;
- first-wins cancellation actually frees the losers' pool slots;
- a raising strategy loses the race instead of poisoning it
  (:class:`~repro.core.RaceError` only when *every* candidate fails);
- a broken worker pool degrades to inline serial evaluation with
  ``stats["fallbacks"]`` incremented — same policy as the compile and
  execution services.
"""

import threading
from concurrent.futures import BrokenExecutor, Future, ThreadPoolExecutor

import pytest

from repro.core import (
    CloudScheduler,
    RaceError,
    StrategyRace,
    SubmittedProgram,
    race_allocations,
)
from repro.hardware import ibm_toronto
from repro.workloads import workload


def _stream(names, spacing_ns=0.0):
    return [
        SubmittedProgram(workload(n).circuit(), arrival_ns=i * spacing_ns,
                         user=f"user{i}")
        for i, n in enumerate(names)
    ]


class TestBestMode:
    def test_lowest_score_wins(self):
        race = StrategyRace([("a", lambda: 30), ("b", lambda: 10),
                             ("c", lambda: 20)])
        out = race.run()
        assert out.winner == "b"
        assert out.value == 10
        assert out.score == 10
        assert not out.fallback

    def test_equal_scores_resolve_to_candidate_order(self):
        # The deterministic tie-break: every rerun commits the earliest
        # candidate, never an arbitrary dict/set ordering.
        race = StrategyRace([("late", lambda: 7), ("early", lambda: 7)])
        for _ in range(5):
            assert race.run().winner == "late"
        flipped = StrategyRace([("early", lambda: 7), ("late", lambda: 7)])
        assert flipped.run().winner == "early"

    def test_raising_candidate_does_not_poison_the_race(self):
        def explode():
            raise ValueError("no placement")

        race = StrategyRace([("broken", explode), ("ok", lambda: 4)])
        out = race.run()
        assert out.winner == "ok"
        assert isinstance(out.errors["broken"], ValueError)
        assert race.stats["errors"] == 1

    def test_all_candidates_failing_raises_race_error(self):
        def explode():
            raise ValueError("boom")

        race = StrategyRace([("a", explode), ("b", explode)])
        with pytest.raises(RaceError, match="all 2 race candidates"):
            race.run()

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            StrategyRace([("a", lambda: 1), ("a", lambda: 2)])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            StrategyRace([("a", lambda: 1)], mode="psychic")


class TestFirstMode:
    def test_first_success_wins_and_cancellation_frees_slots(self):
        # One worker, three candidates: only the first ever runs; the
        # two queued losers are cancelled, so their slots free up for
        # unrelated work immediately.
        release = threading.Event()

        def fast():
            return "fast-value"

        def slow():  # pragma: no cover - must be cancelled before running
            release.wait(5.0)
            return "slow-value"

        with ThreadPoolExecutor(max_workers=1) as pool:
            race = StrategyRace([("fast", fast), ("slow1", slow),
                                 ("slow2", slow)], mode="first",
                                executor=pool)
            out = race.run()
            assert out.winner == "fast"
            assert out.value == "fast-value"
            assert set(out.cancelled) == {"slow1", "slow2"}
            assert race.stats["cancelled"] == 2
            # The slot is genuinely free: a fresh task runs at once
            # instead of queueing behind 2x5s of zombie losers.
            assert pool.submit(lambda: 42).result(timeout=2.0) == 42
        release.set()

    def test_error_then_success(self):
        started = threading.Event()

        def explode():
            raise RuntimeError("strategy crashed")

        def survivor():
            started.wait(5.0)
            return "ok"

        race = StrategyRace([("crash", explode), ("live", survivor)],
                            mode="first")
        started.set()
        out = race.run()
        race.shutdown()
        assert out.winner == "live"
        assert isinstance(out.errors["crash"], RuntimeError)

    def test_all_fail_raises_race_error(self):
        def explode():
            raise RuntimeError("down")

        race = StrategyRace([("a", explode), ("b", explode)], mode="first")
        with pytest.raises(RaceError):
            race.run()
        race.shutdown()

    def test_deterministic_winner_on_simultaneous_completion(self):
        # Exact simultaneity: a synchronous executor completes every
        # candidate before the race inspects the done set, so the
        # committed winner must be the earlier candidate, every time.
        class _SyncPool:
            def submit(self, fn, *args, **kwargs):
                fut = Future()
                fut.set_result(fn(*args, **kwargs))
                return fut

            def shutdown(self, wait=True):
                pass

        for _ in range(3):
            race = StrategyRace([("a", lambda: "a"), ("b", lambda: "b")],
                                mode="first", executor=_SyncPool())
            out = race.run()
            assert out.winner == "a"
            assert out.cancelled == ()


class _BrokenSubmitPool:
    """A process pool whose submit immediately reports it terminated."""

    def submit(self, *args, **kwargs):
        raise BrokenExecutor("process pool is terminated")

    def shutdown(self, wait=True):
        pass


class _DyingWorkerPool:
    """Accepts work, but every worker dies before finishing it."""

    def submit(self, *args, **kwargs):
        fut = Future()
        fut.set_exception(BrokenExecutor("worker died"))
        return fut

    def shutdown(self, wait=True):
        pass


class TestPoolHealth:
    def test_broken_submit_degrades_best_mode_inline(self):
        race = StrategyRace([("a", lambda: 2), ("b", lambda: 1)],
                            executor=_BrokenSubmitPool())
        out = race.run()
        assert out.winner == "b"
        assert out.fallback
        assert race.stats["fallbacks"] == 1

    def test_dying_workers_rerun_candidates_inline(self):
        # A BrokenExecutor result is pool health, not strategy health:
        # the candidate is re-evaluated inline, not recorded as failed.
        race = StrategyRace([("a", lambda: 2), ("b", lambda: 1)],
                            executor=_DyingWorkerPool())
        out = race.run()
        assert out.winner == "b"
        assert out.fallback
        assert out.errors == {}
        assert race.stats["fallbacks"] == 1
        assert race.stats["errors"] == 0

    def test_broken_pool_degrades_first_mode_inline(self):
        race = StrategyRace([("a", lambda: "a"), ("b", lambda: "b")],
                            mode="first", executor=_BrokenSubmitPool())
        out = race.run()
        assert out.winner == "a"  # inline fallback follows candidate order
        assert out.fallback
        assert race.stats["fallbacks"] == 1

    def test_inline_fallback_still_raises_real_errors(self):
        def explode():
            raise ValueError("genuine failure")

        race = StrategyRace([("only", explode)],
                            executor=_BrokenSubmitPool())
        with pytest.raises(RaceError):
            race.run()
        assert race.stats["fallbacks"] == 1


class TestRaceAllocations:
    def test_reproducible_winner_and_placements(self):
        device = ibm_toronto()
        circuits = [workload(n).circuit() for n in ("adder", "bell", "lin")]
        first_alloc, first_out = race_allocations(
            circuits, device, strategies=("qucp", "cna", "qumc"))
        again_alloc, again_out = race_allocations(
            circuits, device, strategies=("qucp", "cna", "qumc"))
        assert first_out.winner == again_out.winner
        assert first_out.score == again_out.score
        assert ([a.partition for a in first_alloc.allocations]
                == [a.partition for a in again_alloc.allocations])
        assert len(first_alloc.allocations) == len(circuits)

    def test_winner_has_lowest_mean_efs(self):
        device = ibm_toronto()
        circuits = [workload(n).circuit() for n in ("adder", "bell")]
        alloc, out = race_allocations(circuits, device,
                                      strategies=("qucp", "qumc"))
        mean = sum(a.efs for a in alloc.allocations) / len(alloc.allocations)
        assert out.score == pytest.approx(mean)


class TestSchedulerRacing:
    def test_race_wins_recorded_and_reproducible(self, toronto):
        subs = _stream(["adder", "bell", "lin", "fredkin"], spacing_ns=1e5)
        scheduler = CloudScheduler(toronto,
                                   race_allocators=("qumc", "qucloud"))
        out = scheduler.schedule(subs)
        assert sum(out.race_wins.values()) == out.num_jobs
        again = CloudScheduler(
            toronto,
            race_allocators=("qumc", "qucloud")).schedule(subs)
        assert again.race_wins == out.race_wins
        assert [j.members for j in again.jobs] == [j.members
                                                   for j in out.jobs]
        assert again.makespan_ns == out.makespan_ns

    def test_racing_never_admits_fewer_than_the_primary(self, toronto):
        subs = _stream(["adder", "bell", "lin", "fredkin", "adder"],
                       spacing_ns=5e4)
        plain = CloudScheduler(toronto).schedule(subs)
        raced = CloudScheduler(
            toronto, race_allocators=("qumc", "qucloud")).schedule(subs)
        assert len(raced.rejected) <= len(plain.rejected)

    def test_non_incremental_challenger_rejected_at_construction(
            self, toronto):
        with pytest.raises(ValueError, match="incremental"):
            CloudScheduler(toronto, race_allocators=("cna",))

    def test_duplicate_challenger_is_dropped(self, toronto):
        # Racing the primary against itself is a no-op; the scheduler
        # must fold it away rather than burn a duplicate evaluation.
        scheduler = CloudScheduler(toronto, race_allocators=("qucp",))
        assert scheduler.race is None

"""Integration tests: full pipelines across modules, mirroring the
paper's experiments at reduced scale."""

import numpy as np
import pytest

from repro.core import (
    cna_allocate,
    cna_transpile_for_partition,
    execute_allocation,
    qucp_allocate,
    select_parallel_count,
)
from repro.sim import ideal_probabilities
from repro.workloads import workload


class TestQucpEndToEnd:
    def test_three_adders_on_toronto(self, toronto):
        """Fig. 3-style run: three deterministic programs in parallel."""
        circuits = [workload("adder").circuit() for _ in range(3)]
        alloc = qucp_allocate(circuits, toronto)
        outcomes = execute_allocation(alloc, shots=4096, seed=1)
        assert len(outcomes) == 3
        for out in outcomes:
            assert out.pst() > 0.25       # well above random (1/16)
            assert out.jsd() < 0.7

    def test_mixed_combo(self, toronto):
        """qec-var-bell: distribution-output programs scored by JSD."""
        circuits = [workload(n).circuit() for n in ("qec", "var", "bell")]
        alloc = qucp_allocate(circuits, toronto)
        outcomes = execute_allocation(alloc, shots=4096, seed=2)
        for out in outcomes:
            assert 0.0 <= out.jsd() < 0.6

    def test_parallel_fidelity_close_to_solo(self, toronto):
        """Parallel execution costs some fidelity but not all of it."""
        qc = workload("fredkin").circuit()
        solo_alloc = qucp_allocate([qc], toronto)
        solo = execute_allocation(solo_alloc, shots=0, seed=3)[0]
        triple_alloc = qucp_allocate(
            [workload("fredkin").circuit() for _ in range(3)], toronto)
        triple = execute_allocation(triple_alloc, shots=0, seed=3)
        solo_pst = solo.pst()
        for out in triple:
            assert out.pst() > 0.5 * solo_pst

    def test_unmeasured_program_rejected(self, toronto):
        qc = workload("adder").circuit(measured=False)
        alloc = qucp_allocate([qc], toronto)
        with pytest.raises(ValueError):
            execute_allocation(alloc, shots=16)


class TestCnaEndToEnd:
    def test_cna_transpiler_hook(self, toronto):
        circuits = [workload("adder").circuit() for _ in range(3)]
        alloc = cna_allocate(circuits, toronto)

        def cna_transpiler(circuit, device, allocation):
            return cna_transpile_for_partition(
                circuit, device, allocation.partition,
                allocation.crosstalk_pairs)

        outcomes = execute_allocation(alloc, shots=2048, seed=5,
                                      transpiler_fn=cna_transpiler)
        assert len(outcomes) == 3
        for out in outcomes:
            assert out.pst() > 0.1


class TestQucpVsCnaShape:
    def test_qucp_not_worse_on_average(self, toronto):
        """The paper's Fig. 3 headline, at reduced scale: mean PST of
        QuCP >= mean PST of CNA (within sampling noise)."""
        from repro.core import cna_compile

        names = ["adder", "fred", "alu"]
        circuits = [workload(n).circuit() for n in names]

        qucp_out = execute_allocation(
            qucp_allocate(circuits, toronto), shots=0, seed=11)
        cna = cna_compile(circuits, toronto)
        cna_out = execute_allocation(cna.allocation, shots=0, seed=11,
                                     transpiler_fn=cna.transpiler_fn())
        qucp_mean = np.mean([o.pst() for o in qucp_out])
        cna_mean = np.mean([o.pst() for o in cna_out])
        assert qucp_mean >= cna_mean - 0.03


class TestThresholdIntegration:
    def test_admitted_copies_execute(self, manhattan):
        qc = workload("4mod5-v1_22").circuit()
        decision = select_parallel_count(qc, manhattan, threshold=0.5,
                                         max_copies=4)
        outcomes = execute_allocation(decision.allocation, shots=1024,
                                      seed=7)
        assert len(outcomes) == decision.num_parallel
        for out in outcomes:
            assert out.pst() > 0.2


class TestMeasuredVsIdealConsistency:
    def test_noiseless_execution_matches_ideal(self, toronto):
        """With crosstalk and noise disabled the executor reproduces the
        ideal distribution through the whole transpile pipeline."""
        qc = workload("linearsolver").circuit()
        alloc = qucp_allocate([qc], toronto)
        out = execute_allocation(alloc, shots=0, seed=0,
                                 include_crosstalk=False)[0]
        # Run the same transpiled program without noise.
        from repro.sim.executor import Program, run_parallel

        res = run_parallel(
            [Program(out.transpiled.circuit, out.allocation.partition)],
            toronto, shots=0, noisy=False)[0]
        ideal = ideal_probabilities(qc)
        for key, p in ideal.items():
            assert res.probabilities.get(key, 0.0) == pytest.approx(
                p, abs=1e-6)

"""Timing-precision tests for ALAP scheduling and duration accounting."""

import pytest

from repro.circuits import QuantumCircuit
from repro.sim.executor import program_duration, timed_intervals
from repro.transpiler import circuit_duration, schedule_alap

DUR = {"x": 10.0, "sx": 10.0, "rz": 0.0, "cx": 100.0, "measure": 50.0}


class TestAlapDelayPlacement:
    def test_gap_duration_exact(self):
        # q1 idles between its two CX interactions while q0 runs 3 X.
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.x(0).x(0).x(0)
        qc.cx(0, 1)
        scheduled = schedule_alap(qc, DUR)
        delays = [i for i in scheduled if i.name == "delay"]
        assert len(delays) == 1
        assert delays[0].qubits == (1,)
        assert delays[0].params[0] == pytest.approx(30.0)

    def test_makespan_unchanged_by_scheduling(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.x(0).x(0)
        qc.cx(0, 1)
        before = circuit_duration(qc, DUR)
        after = circuit_duration(schedule_alap(qc, DUR), DUR)
        assert after == pytest.approx(before)

    def test_no_leading_delays(self):
        """Qubits waiting in |0> before their first gate get no delay."""
        qc = QuantumCircuit(2)
        qc.x(0).x(0).x(0)
        qc.cx(0, 1)
        scheduled = schedule_alap(qc, DUR)
        assert scheduled.count_ops().get("delay", 0) == 0

    def test_rz_is_free(self):
        qc = QuantumCircuit(1)
        qc.rz(0.3, 0).x(0)
        assert circuit_duration(qc, DUR) == pytest.approx(10.0)


class TestTimedIntervals:
    def test_alap_end_alignment_across_qubits(self):
        qc = QuantumCircuit(2)
        qc.x(0).x(0).x(1)
        iv = timed_intervals(qc, DUR, mode="alap")
        # Both final gates end at time-from-end 0.
        assert iv[1][0] == pytest.approx(0.0)
        assert iv[2][0] == pytest.approx(0.0)

    def test_asap_measure_duration(self):
        qc = QuantumCircuit(1, 1)
        qc.x(0).measure(0, 0)
        iv = timed_intervals(qc, DUR, mode="asap")
        assert iv[1] == (10.0, 60.0)

    def test_program_duration_max_over_qubits(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.cx(0, 1)
        qc.x(1)
        assert program_duration(qc, DUR) == pytest.approx(120.0)

    def test_program_duration_prices_delay_by_param(self):
        """Regression: delays were billed at the 35 ns fallback instead of
        their actual duration, so ALAP/ASAP estimates disagreed with the
        timed_intervals schedule used for crosstalk overlap."""
        qc = QuantumCircuit(1)
        qc.x(0)
        qc.delay(0, 500.0)
        qc.x(0)
        assert program_duration(qc, DUR) == pytest.approx(520.0)

    def test_program_duration_agrees_with_timed_intervals(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.delay(0, 321.0)
        qc.barrier()
        qc.x(1)
        # Hand-computed: cx 0-100, delay 100-421, barrier free, x 421-431.
        assert program_duration(qc, DUR) == pytest.approx(431.0)
        makespan = max(e for _, e in timed_intervals(qc, DUR, mode="asap"))
        assert makespan == pytest.approx(431.0)

    def test_program_duration_barrier_free(self):
        qc = QuantumCircuit(2)
        qc.x(0).barrier().x(0)
        assert program_duration(qc, DUR) == pytest.approx(20.0)

    def test_barrier_takes_no_time(self):
        qc = QuantumCircuit(2)
        qc.x(0).barrier().x(0)
        assert circuit_duration(qc, DUR) == pytest.approx(20.0)

"""Unit tests for the fidelity-threshold scheduler (Sec. IV-B)."""

import pytest

from repro.core import select_parallel_count
from repro.workloads import workload


@pytest.fixture(scope="module")
def circuit():
    return workload("4mod5-v1_22").circuit()


class TestThresholdScheduler:
    def test_zero_threshold_single_copy(self, circuit, manhattan):
        decision = select_parallel_count(circuit, manhattan, threshold=0.0)
        assert decision.num_parallel == 1
        assert decision.throughput == pytest.approx(5 / 65)

    def test_copies_monotone_in_threshold(self, circuit, manhattan):
        counts = [
            select_parallel_count(circuit, manhattan, threshold=t,
                                  max_copies=6).num_parallel
            for t in (0.0, 0.1, 0.3, 0.6, 1.0, 3.0)
        ]
        assert counts == sorted(counts)
        assert counts[0] == 1

    def test_large_threshold_hits_max_copies(self, circuit, manhattan):
        decision = select_parallel_count(circuit, manhattan,
                                         threshold=100.0, max_copies=6)
        assert decision.num_parallel == 6
        # Paper Fig. 4: six 5-qubit copies on Manhattan = 46.2%.
        assert decision.throughput == pytest.approx(30 / 65)

    def test_efs_series_non_decreasing(self, circuit, manhattan):
        decision = select_parallel_count(circuit, manhattan,
                                         threshold=100.0, max_copies=6)
        efs = decision.efs_per_copy
        assert all(efs[i] <= efs[i + 1] + 1e-12
                   for i in range(len(efs) - 1))

    def test_relative_degradation(self, circuit, manhattan):
        decision = select_parallel_count(circuit, manhattan,
                                         threshold=100.0, max_copies=4)
        assert decision.relative_degradation(1) == pytest.approx(0.0)
        assert decision.relative_degradation(
            decision.num_parallel) >= 0.0

    def test_negative_threshold_rejected(self, circuit, manhattan):
        with pytest.raises(ValueError):
            select_parallel_count(circuit, manhattan, threshold=-0.1)

    def test_partitions_disjoint(self, circuit, manhattan):
        decision = select_parallel_count(circuit, manhattan,
                                         threshold=100.0, max_copies=6)
        seen = set()
        for part in decision.allocation.partitions:
            assert not seen & set(part)
            seen.update(part)

    def test_capacity_limit_respected(self, circuit, line5):
        decision = select_parallel_count(circuit, line5,
                                         threshold=100.0, max_copies=6)
        assert decision.num_parallel == 1  # only 5 qubits available

"""Randomized equivalence: tensor-contraction kernels vs dense reference.

The contraction backend must reproduce the old full-space embedding path
bit-for-bit (to 1e-10) over random circuits with non-sorted multi-qubit
gate tuples, resets, delays, noise, crosstalk error scales, and
non-contiguous measured clbits.
"""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.sim import (
    NoiseModel,
    circuit_unitary,
    embed_gate,
    run_circuit,
    simulate_density_matrix,
    simulate_statevector,
)

ATOL = 1e-10

#: (name, num_qubits, num_params) gate pool for random circuits.
GATE_POOL = [
    ("h", 1, 0), ("x", 1, 0), ("s", 1, 0), ("t", 1, 0), ("sx", 1, 0),
    ("rx", 1, 1), ("ry", 1, 1), ("rz", 1, 1), ("u", 1, 3),
    ("cx", 2, 0), ("cz", 2, 0), ("swap", 2, 0), ("rzz", 2, 1),
    ("cp", 2, 1), ("ccx", 3, 0),
]


def _random_circuit(rng, num_qubits, depth, *, resets=False, delays=False,
                    max_arity=None):
    qc = QuantumCircuit(num_qubits, num_qubits)
    pool = [g for g in GATE_POOL
            if g[1] <= num_qubits and (max_arity is None or g[1] <= max_arity)]
    for _ in range(depth):
        roll = rng.random()
        if resets and roll < 0.08:
            qc.reset(int(rng.integers(num_qubits)))
            continue
        if delays and roll < 0.16:
            qc.delay(int(rng.integers(num_qubits)),
                     float(rng.uniform(10.0, 500.0)))
            continue
        name, arity, nparams = pool[rng.integers(len(pool))]
        # Unsorted qubit tuples exercise the axis permutations.
        qubits = rng.choice(num_qubits, size=arity, replace=False)
        params = [float(rng.uniform(0, 2 * np.pi)) for _ in range(nparams)]
        qc._add(name, [int(q) for q in qubits], *params)
    return qc


def _full_noise(num_qubits):
    return NoiseModel(
        oneq_error={q: 1e-3 + 1e-4 * q for q in range(num_qubits)},
        twoq_error={(a, b): 0.01 + 0.002 * (a + b)
                    for a in range(num_qubits)
                    for b in range(a + 1, num_qubits)},
        readout_error={q: (0.02, 0.01) for q in range(num_qubits)},
        t1={q: 80_000.0 for q in range(num_qubits)},
        t2={q: 70_000.0 for q in range(num_qubits)},
        detuning={0: 2e-5},
    )


def _assert_probs_equal(a, b):
    for key in set(a) | set(b):
        assert a.get(key, 0.0) == pytest.approx(b.get(key, 0.0), abs=ATOL)


class TestDensityMatrixEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_noiseless_rho_matches_dense(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        qc = _random_circuit(rng, n, depth=12, resets=True)
        tensor = simulate_density_matrix(qc)
        dense = simulate_density_matrix(qc, backend="dense")
        assert np.allclose(tensor, dense, atol=ATOL)

    @pytest.mark.parametrize("seed", range(8))
    def test_noisy_rho_matches_dense(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 6))
        qc = _random_circuit(rng, n, depth=12, resets=True, delays=True)
        nm = _full_noise(n)
        scales = {i: float(rng.uniform(1.0, 4.0))
                  for i in range(len(qc)) if rng.random() < 0.3}
        tensor = simulate_density_matrix(qc, nm, error_scales=scales)
        dense = simulate_density_matrix(qc, nm, error_scales=scales,
                                        backend="dense")
        assert np.allclose(tensor, dense, atol=ATOL)

    @pytest.mark.parametrize("seed", range(6))
    def test_measured_distributions_match(self, seed):
        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(3, 6))
        qc = _random_circuit(rng, n, depth=10, resets=True, delays=True)
        # Measure a random subset into *non-contiguous* clbits.
        qubits = rng.choice(n, size=int(rng.integers(1, n + 1)),
                            replace=False)
        clbits = sorted(rng.choice(n, size=len(qubits), replace=False))
        for q, c in zip(qubits, clbits):
            qc.measure(int(q), int(c))
        nm = _full_noise(n)
        a = run_circuit(qc, noise_model=nm)
        b = run_circuit(qc, noise_model=nm, backend="dense")
        _assert_probs_equal(a.probabilities, b.probabilities)
        assert a.measured_clbits == b.measured_clbits == tuple(clbits)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            simulate_density_matrix(QuantumCircuit(1), backend="sparse")


class TestStatevectorConsistency:
    @pytest.mark.parametrize("seed", range(6))
    def test_statevector_matches_density_diagonal(self, seed):
        rng = np.random.default_rng(300 + seed)
        n = int(rng.integers(2, 6))
        qc = _random_circuit(rng, n, depth=12)
        amps = simulate_statevector(qc)
        rho = simulate_density_matrix(qc)
        assert np.allclose(np.outer(amps, amps.conj()), rho, atol=ATOL)


class TestCircuitUnitaryEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_contraction_matches_embedded_composition(self, seed):
        rng = np.random.default_rng(400 + seed)
        n = int(rng.integers(2, 5))
        qc = _random_circuit(rng, n, depth=10)
        via_kernels = circuit_unitary(qc)
        dense = np.eye(2 ** n, dtype=complex)
        for inst in qc:
            dense = embed_gate(inst.gate.matrix(), inst.qubits, n) @ dense
        assert np.allclose(via_kernels, dense, atol=ATOL)

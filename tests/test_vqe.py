"""Unit tests for the VQE stack (Pauli algebra through drivers)."""

import math

import numpy as np
import pytest

from repro.vqe import (
    NUM_ANSATZ_PARAMETERS,
    PauliOperator,
    PauliString,
    group_commuting_terms,
    h2_hamiltonian,
    measurement_circuit,
    relative_error_percent,
    run_vqe_scan_ideal,
    ryrz_ansatz,
    term_expectation,
    vqe_energy_ideal,
)


class TestPauliString:
    def test_bad_label_rejected(self):
        with pytest.raises(ValueError):
            PauliString("AB")
        with pytest.raises(ValueError):
            PauliString("")

    def test_matrix_z(self):
        z = PauliString("Z").matrix()
        assert np.allclose(z, np.diag([1, -1]))

    def test_matrix_tensor_order(self):
        zi = PauliString("ZI").matrix()
        assert np.allclose(zi, np.diag([1, 1, -1, -1]))

    def test_commutation(self):
        assert PauliString("XX").commutes_with(PauliString("ZZ"))
        assert not PauliString("XI").commutes_with(PauliString("ZI"))

    def test_qubit_wise_commutation(self):
        assert PauliString("IZ").qubit_wise_commutes_with(PauliString("ZZ"))
        assert not PauliString("XX").qubit_wise_commutes_with(
            PauliString("ZZ"))

    def test_product_with_phase(self):
        phase, result = PauliString("X") * PauliString("Y")
        assert phase == 1j
        assert result.label == "Z"

    def test_support(self):
        assert PauliString("IZXI").support() == (1, 2)

    def test_is_identity(self):
        assert PauliString("II").is_identity
        assert not PauliString("IZ").is_identity


class TestPauliOperator:
    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            PauliOperator({"Z": 1.0, "ZZ": 2.0})

    def test_matrix_hermitian(self):
        mat = h2_hamiltonian().matrix()
        assert np.allclose(mat, mat.conj().T)

    def test_ground_energy_h2(self):
        # The well-known H2/STO-3G value at 0.735 A.
        assert h2_hamiltonian().ground_energy() == pytest.approx(
            -1.8572750, abs=1e-5)

    def test_expectation_of_eigenstate(self):
        h = h2_hamiltonian()
        eigvals, eigvecs = np.linalg.eigh(h.matrix())
        ground = eigvecs[:, 0]
        assert h.expectation(ground) == pytest.approx(eigvals[0])

    def test_coefficient_lookup(self):
        h = h2_hamiltonian()
        assert h.coefficient("XX") == pytest.approx(0.1809312, abs=1e-6)
        assert h.coefficient("YY") == 0.0


class TestGrouping:
    def test_h2_groups_match_paper(self):
        groups = group_commuting_terms(h2_hamiltonian())
        labels = [sorted(t.label for t, _ in g.terms) for g in groups]
        assert labels == [["II", "IZ", "ZI", "ZZ"], ["XX"]]

    def test_shared_bases(self):
        groups = group_commuting_terms(h2_hamiltonian())
        assert groups[0].basis == ("Z", "Z")
        assert groups[1].basis == ("X", "X")

    def test_members_pairwise_qwc(self):
        op = PauliOperator({
            "XI": 1.0, "IX": 0.5, "XX": 0.3, "ZZ": 0.2, "ZI": 0.1})
        for group in group_commuting_terms(op):
            members = [t for t, _ in group.terms]
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    assert a.qubit_wise_commutes_with(b)


class TestAnsatz:
    def test_parameter_count(self):
        qc = ryrz_ansatz([0.1] * NUM_ANSATZ_PARAMETERS)
        assert qc.count_ops()["ry"] == 6
        assert qc.count_ops()["rz"] == 6
        assert qc.count_ops()["cx"] == 2  # "two CNOTs for entanglers"

    def test_tied_parameter_broadcast(self):
        tied = ryrz_ansatz([0.3])
        full = ryrz_ansatz([0.3] * NUM_ANSATZ_PARAMETERS)
        assert tied == full

    def test_wrong_parameter_count_rejected(self):
        with pytest.raises(ValueError):
            ryrz_ansatz([0.1, 0.2])

    def test_tied_ansatz_reaches_near_ground_state(self):
        energies = [vqe_energy_ideal(t)
                    for t in np.linspace(-math.pi, math.pi, 400)]
        best = min(energies)
        exact = h2_hamiltonian().ground_energy()
        assert relative_error_percent(best, exact) < 2.0


class TestMeasurement:
    def test_basis_rotations_added(self):
        groups = group_commuting_terms(h2_hamiltonian())
        ansatz = ryrz_ansatz([0.2])
        zz = measurement_circuit(ansatz, groups[0])
        xx = measurement_circuit(ansatz, groups[1])
        assert zz.count_ops().get("h", 0) == 0
        assert xx.count_ops()["h"] == 2

    def test_term_expectation_parity(self):
        probs = {"00": 0.5, "11": 0.5}
        assert term_expectation(probs, PauliString("ZZ")) == 1.0
        assert term_expectation(probs, PauliString("ZI")) == 0.0
        assert term_expectation(probs, PauliString("II")) == 1.0

    def test_mismatched_qubits_rejected(self):
        groups = group_commuting_terms(h2_hamiltonian())
        with pytest.raises(ValueError):
            measurement_circuit(ryrz_ansatz([0.1], num_qubits=3,
                                            reps=2), groups[0])


class TestDrivers:
    def test_ideal_scan_consistent_with_direct_expectation(self):
        thetas = [-0.5, 0.0, 0.5]
        scan = run_vqe_scan_ideal(thetas)
        for theta, energy in zip(scan.thetas, scan.energies):
            assert energy == pytest.approx(vqe_energy_ideal(theta),
                                           abs=1e-9)

    def test_parallel_scan_structure(self, manhattan):
        from repro.vqe import run_vqe_scan_parallel

        thetas = np.linspace(-2.0, -0.5, 4)
        result = run_vqe_scan_parallel(thetas, manhattan, shots=1024,
                                       seed=3)
        assert result.num_simultaneous == 8  # 4 thetas x 2 groups
        assert result.throughput == pytest.approx(16 / 65)
        assert len(result.energies) == 4

    def test_relative_error(self):
        assert relative_error_percent(-1.8, -2.0) == pytest.approx(10.0)

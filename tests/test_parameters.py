"""Unit tests for symbolic circuit parameters."""

import math

import numpy as np
import pytest

from repro.circuits import (
    Parameter,
    ParameterExpression,
    QuantumCircuit,
    UnboundParameterError,
    gate,
)
from repro.sim import simulate_statevector


class TestParameterAlgebra:
    def test_identity(self):
        theta = Parameter("theta")
        assert theta.parameters == {theta}
        assert theta.bind({theta: 1.5}) == 1.5

    def test_affine_arithmetic(self):
        t = Parameter("t")
        expr = 2 * t + 0.5
        assert expr.bind({t: 1.0}) == pytest.approx(2.5)
        expr2 = (t + t) / 2 - 0.25
        assert expr2.bind({t: 3.0}) == pytest.approx(2.75)

    def test_negation_and_rsub(self):
        t = Parameter("t")
        assert (-t).bind({t: 2.0}) == -2.0
        assert (1.0 - t).bind({t: 0.25}) == pytest.approx(0.75)

    def test_multi_parameter(self):
        a, b = Parameter("a"), Parameter("b")
        expr = a + 3 * b
        partial = expr.bind({a: 1.0})
        assert isinstance(partial, ParameterExpression)
        assert partial.bind({b: 2.0}) == pytest.approx(7.0)

    def test_value_requires_full_binding(self):
        t = Parameter("t")
        with pytest.raises(UnboundParameterError):
            (t + 1).value()

    def test_nonlinear_rejected(self):
        a, b = Parameter("a"), Parameter("b")
        with pytest.raises(TypeError):
            _ = a * b

    def test_distinct_parameters_not_equal(self):
        assert Parameter("x") != Parameter("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Parameter("")


class TestParameterizedGates:
    def test_gate_accepts_expression(self):
        t = Parameter("t")
        g = gate("rz", t)
        assert g.is_parameterized

    def test_matrix_requires_binding(self):
        t = Parameter("t")
        with pytest.raises(UnboundParameterError):
            gate("rz", t).matrix()

    def test_bound_gate(self):
        t = Parameter("t")
        g = gate("rz", 2 * t).bound({t: 0.5})
        assert not g.is_parameterized
        ref = gate("rz", 1.0).matrix()
        assert np.allclose(g.matrix(), ref)

    def test_inverse_of_symbolic_gate(self):
        t = Parameter("t")
        inv = gate("rz", t).inverse()
        bound = inv.bound({t: 0.7})
        assert np.allclose(bound.matrix(), gate("rz", -0.7).matrix())


class TestParameterizedCircuits:
    def test_parameters_collected(self):
        a, b = Parameter("a"), Parameter("b")
        qc = QuantumCircuit(2)
        qc.ry(a, 0)
        qc.rz(a + b, 1)
        assert qc.parameters == {a, b}

    def test_bind_all(self):
        t = Parameter("t")
        qc = QuantumCircuit(1)
        qc.ry(t, 0).rz(2 * t, 0)
        bound = qc.bind_parameters({t: 0.3})
        assert not bound.is_parameterized()
        ref = QuantumCircuit(1).ry(0.3, 0).rz(0.6, 0)
        assert np.allclose(simulate_statevector(bound),
                           simulate_statevector(ref))

    def test_partial_binding(self):
        a, b = Parameter("a"), Parameter("b")
        qc = QuantumCircuit(1)
        qc.ry(a, 0).rz(b, 0)
        partial = qc.bind_parameters({a: 0.5})
        assert partial.parameters == {b}

    def test_original_unchanged_by_binding(self):
        t = Parameter("t")
        qc = QuantumCircuit(1)
        qc.ry(t, 0)
        qc.bind_parameters({t: 1.0})
        assert qc.is_parameterized()

    def test_simulation_of_unbound_rejected(self):
        t = Parameter("t")
        qc = QuantumCircuit(1)
        qc.rx(t, 0)
        with pytest.raises(UnboundParameterError):
            simulate_statevector(qc)

    def test_fixed_gates_unaffected(self):
        t = Parameter("t")
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).rz(t, 1)
        bound = qc.bind_parameters({t: math.pi})
        assert bound.count_ops() == {"h": 1, "cx": 1, "rz": 1}

    def test_parameterized_ansatz_sweep(self):
        """A parameterized ansatz template bound across a sweep matches
        per-value construction."""
        t = Parameter("theta")
        template = QuantumCircuit(2)
        template.ry(t, 0).ry(t, 1).cx(1, 0).rz(t / 2, 0)
        for value in (-1.0, 0.0, 2.2):
            bound = template.bind_parameters({t: value})
            direct = QuantumCircuit(2)
            direct.ry(value, 0).ry(value, 1).cx(1, 0).rz(value / 2, 0)
            assert np.allclose(simulate_statevector(bound),
                               simulate_statevector(direct))

"""Facade-vs-engine equivalence (the API-redesign acceptance gate).

A scheduler-backed facade job must reproduce a direct
``CloudScheduler.schedule`` + ``run_batch`` drive of the engine layer
**bit-identically**: same seeds in, same dispatch decisions, same queue
timings, same sampled counts out.  Also covers the
``CompileService(mode="auto")`` degenerate routes reached through the
Job path — batch of 1, single-partition allocations, and the inline
fallback when the process pool is broken.
"""

import math
import os
from concurrent.futures import BrokenExecutor, Future

import pytest

from repro.core import (
    CloudScheduler,
    SubmittedProgram,
    execute_allocation,
    qucp_allocate,
    run_batch,
)
from repro.core.compile_service import CompileService
from repro.core.executor import BatchJob, ExecutionCache
from repro.hardware import DeviceFleet, ibm_melbourne, ibm_toronto
from repro.service import JobStatus, QuantumProvider
from repro.workloads import synthesize_traffic, workload


@pytest.fixture()
def provider():
    prov = QuantumProvider()
    yield prov
    prov.shutdown()


def traffic(n=10, seed=3):
    return synthesize_traffic(n, pattern="poisson",
                              mean_interarrival_ns=2e5,
                              mix="heavy_tail", seed=seed)


def reference_counts(outcome, shots, seed):
    """The engine-layer execution convention for a schedule outcome:
    one BatchJob per dispatched hardware job, in dispatch order, child
    RNG streams spawned from the batch seed."""
    jobs = [BatchJob(job.allocation, shots=shots) for job in outcome.jobs]
    outs = run_batch(jobs, seed=seed, cache=ExecutionCache())
    counts = {}
    for job_outs in outs:
        for out in job_outs:
            counts[out.allocation.index] = out.result.counts
    return counts


def assert_schedules_identical(got, want):
    """Bit-exact schedule comparison (timings are float-equal, not
    approx: both sides must run the identical event sequence)."""
    assert got.num_jobs == want.num_jobs
    assert got.makespan_ns == want.makespan_ns
    assert got.completion_ns == want.completion_ns
    assert got.rejected == want.rejected
    if math.isnan(want.mean_turnaround_ns):
        assert math.isnan(got.mean_turnaround_ns)
    else:
        assert got.mean_turnaround_ns == want.mean_turnaround_ns
    assert got.mean_throughput == want.mean_throughput
    for gjob, wjob in zip(got.jobs, want.jobs):
        assert gjob.device_index == wjob.device_index
        assert gjob.device_name == wjob.device_name
        assert gjob.start_ns == wjob.start_ns
        assert gjob.end_ns == wjob.end_ns
        assert gjob.members == wjob.members
        got_allocs = sorted(gjob.allocation.allocations,
                            key=lambda a: a.index)
        want_allocs = sorted(wjob.allocation.allocations,
                             key=lambda a: a.index)
        for galloc, walloc in zip(got_allocs, want_allocs):
            assert galloc.partition == walloc.partition
            assert galloc.efs == walloc.efs
            assert galloc.crosstalk_pairs == walloc.crosstalk_pairs


# ----------------------------------------------------------------------
# the acceptance gate: Job.result() == CloudScheduler.schedule + run_batch
# ----------------------------------------------------------------------

class TestSchedulerEquivalence:
    def test_single_device_job_bit_identical(self, provider):
        subs = traffic(10)
        shots, seed = 256, 11

        backend = provider.backend("ibm_toronto", fidelity_threshold=0.5,
                                   batch_window_ns=2e5)
        result = backend.run(subs, shots=shots, seed=seed).result()

        engine = CloudScheduler(ibm_toronto(), fidelity_threshold=0.5,
                                batch_window_ns=2e5)
        outcome = engine.schedule(subs)

        assert_schedules_identical(result.schedule, outcome)

        # Counts: bit-identical to the engine execution convention.
        want = reference_counts(outcome, shots, seed)
        assert {p.index for p in result.programs} == set(want)
        for prog in result.programs:
            assert prog.counts == want[prog.index]

        # Turnarounds surfaced per program match the engine's.
        want_turnaround = outcome.turnaround_ns(subs)
        for prog in result.programs:
            assert prog.turnaround_ns == want_turnaround[prog.index]

    def test_fleet_job_bit_identical(self, provider):
        subs = traffic(12, seed=9)
        backend = provider.fleet_backend(
            ["ibm_toronto", "ibm_melbourne"], policy="least_loaded",
            fidelity_threshold=1.0)
        result = backend.run(subs, shots=128, seed=4).result()

        fleet = DeviceFleet([ibm_toronto(), ibm_melbourne()],
                            policy="least_loaded")
        outcome = CloudScheduler(fleet,
                                 fidelity_threshold=1.0).schedule(subs)
        assert_schedules_identical(result.schedule, outcome)
        want = reference_counts(outcome, 128, 4)
        for prog in result.programs:
            assert prog.counts == want[prog.index]

    def test_serial_configuration_equivalent(self, provider):
        subs = traffic(6, seed=21)
        backend = provider.backend("ibm_toronto", fidelity_threshold=0.0,
                                   max_batch_size=1)
        result = backend.run(subs, shots=64, seed=2).result()
        outcome = CloudScheduler(ibm_toronto(), fidelity_threshold=0.0,
                                 max_batch_size=1).schedule(subs)
        assert result.schedule.num_jobs == len(subs)
        assert_schedules_identical(result.schedule, outcome)

    def test_schedule_only_mode(self, provider):
        subs = traffic(8, seed=5)
        backend = provider.backend("ibm_toronto", fidelity_threshold=0.5)
        result = backend.run(subs, execute=False).result()
        outcome = CloudScheduler(
            ibm_toronto(), fidelity_threshold=0.5).schedule(subs)
        assert_schedules_identical(result.schedule, outcome)
        assert result.programs == []
        assert result.outcomes == []
        assert result.metadata.num_hardware_jobs == outcome.num_jobs
        assert result.metadata.shots == 0

    def test_rejected_submissions_reported(self, provider):
        # An 8-qubit GHZ does not fit the 5-qubit linear device.
        from repro.circuits import ghz_circuit
        from repro.hardware import linear_device
        dev = linear_device(5, seed=1)
        provider.add_device(dev)
        subs = [SubmittedProgram(workload("bell").circuit()),
                SubmittedProgram(ghz_circuit(8).measure_all())]
        backend = provider.backend(dev.name)
        result = backend.run(subs, shots=32, seed=1).result()
        assert result.metadata.rejected == (1,)
        assert [p.index for p in result.programs] == [0]
        with pytest.raises(KeyError, match="rejected"):
            result.program(1)


# ----------------------------------------------------------------------
# auto-mode degenerate routes through the Job path
# ----------------------------------------------------------------------

class TestAutoRouteDegenerates:
    def test_batch_of_one_runs_inline(self):
        with QuantumProvider(compile_mode="auto") as prov:
            job = prov.simulator("ibm_toronto").run(
                workload("adder").circuit(), shots=64, seed=1)
            result = job.result()
        svc = prov.compile_service
        # One program -> serial route: compiled inline, no pool spun up.
        assert svc._thread_pool is None
        assert svc._process_pool is None
        assert svc.stats["submitted"] == 1
        assert result.programs[0].counts

    def test_single_partition_allocation_through_scheduler(self):
        with QuantumProvider(compile_mode="auto") as prov:
            backend = prov.backend("ibm_toronto", max_batch_size=1)
            subs = [SubmittedProgram(workload("adder").circuit()),
                    SubmittedProgram(workload("bell").circuit())]
            result = backend.run(subs, shots=64, seed=7).result()
        svc = prov.compile_service
        # Every dispatched batch holds one program -> all serial.
        assert svc._process_pool is None
        assert svc._thread_pool is None
        assert result.schedule.num_jobs == 2
        assert len(result.programs) == 2

    def test_wider_batch_takes_thread_route(self):
        with QuantumProvider(compile_mode="auto") as prov:
            circuits = [workload(n).circuit()
                        for n in ("adder", "bell", "lin", "var")]
            result = prov.simulator("ibm_toronto").run(
                circuits, shots=0, seed=1).result()
        svc = prov.compile_service
        # 4 programs on a 27q device: threads on multi-core hosts,
        # serial on a single core — never the process pool.
        if (os.cpu_count() or 1) > 1:
            assert svc._thread_pool is not None
        else:
            assert svc._thread_pool is None
        assert svc._process_pool is None
        assert len(result.programs) == 4

    def _broken_submit_pool(self):
        class _BrokenPool:
            def submit(self, *args, **kwargs):
                raise BrokenExecutor("process pool is terminated")

            def shutdown(self, wait=True):
                pass
        return _BrokenPool()

    def _dying_worker_pool(self):
        class _DyingPool:
            def submit(self, *args, **kwargs):
                fut = Future()
                fut.set_exception(BrokenExecutor("worker died"))
                return fut

            def shutdown(self, wait=True):
                pass
        return _DyingPool()

    def test_broken_pool_falls_back_inline_through_job_path(self):
        with QuantumProvider(compile_mode="process") as prov:
            prov.compile_service._process_pool = (
                self._broken_submit_pool())
            circuits = [workload(n).circuit()
                        for n in ("adder", "bell", "lin")]
            job = prov.simulator("ibm_toronto").run(circuits, shots=64,
                                                    seed=5)
            result = job.result()
            assert job.status() is JobStatus.DONE
        assert prov.compile_service.stats["fallbacks"] == 3
        # The fallback compiles are real: counts match a service-free run.
        device = ibm_toronto()
        want = execute_allocation(qucp_allocate(circuits, device),
                                  shots=64, seed=5)
        for prog, ref in zip(result.programs, want):
            assert prog.counts == ref.result.counts

    def test_mid_chunk_worker_death_falls_back_inline(self):
        with QuantumProvider(compile_mode="process") as prov:
            prov.compile_service._process_pool = self._dying_worker_pool()
            circuits = [workload(n).circuit() for n in ("adder", "bell")]
            result = prov.simulator("ibm_toronto").run(
                circuits, shots=32, seed=2).result()
        assert prov.compile_service.stats["fallbacks"] == 2
        assert len(result.programs) == 2
        assert all(p.counts for p in result.programs)

    def test_broken_pool_is_replaced_for_the_next_batch(self):
        with QuantumProvider(compile_mode="process") as prov:
            svc = prov.compile_service
            svc._process_pool = self._broken_submit_pool()
            circuits = [workload(n).circuit() for n in ("adder", "bell")]
            prov.simulator("ibm_toronto").run(circuits, shots=0,
                                              seed=1).result()
            assert svc.stats["fallbacks"] == 2
            # The dead pool was dropped: the next process-route batch
            # builds a real pool instead of falling back forever.
            assert svc._process_pool is None

    def test_non_pool_errors_still_propagate(self):
        svc = CompileService(mode="serial")

        def broken_transpiler(circuit, device, allocation):
            raise RuntimeError("bad hook")

        device = ibm_toronto()
        allocation = qucp_allocate([workload("adder").circuit()], device)
        fut = svc.submit(allocation.allocations[0].circuit, device,
                         allocation.allocations[0], broken_transpiler)
        with pytest.raises(RuntimeError, match="bad hook"):
            fut.result()
        assert svc.stats["fallbacks"] == 0

"""Unit tests for the ASCII circuit drawer."""

from repro.circuits import QuantumCircuit, draw


class TestDraw:
    def test_one_line_per_qubit(self):
        qc = QuantumCircuit(3)
        text = draw(qc)
        assert len(text.splitlines()) == 3

    def test_single_qubit_gate_label(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        assert "[h]" in draw(qc)

    def test_cx_symbols(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        lines = draw(qc).splitlines()
        assert "*" in lines[0]
        assert "[X]" in lines[1]

    def test_measure_symbol(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        assert "[M]" in draw(qc)

    def test_barrier_marks_spanned_qubits(self):
        qc = QuantumCircuit(2)
        qc.barrier(0)
        lines = draw(qc).splitlines()
        assert "|" in lines[0]
        assert "|" not in lines[1]

    def test_vertical_connector_through_middle(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 2)
        lines = draw(qc).splitlines()
        assert "|" in lines[1]

    def test_columns_aligned(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1)
        lines = draw(qc).splitlines()
        assert len(lines[0]) == len(lines[1])

    def test_parametric_label(self):
        qc = QuantumCircuit(1)
        qc.rz(0.5, 0)
        assert "rz(0.5)" in draw(qc)

    def test_max_width_truncation(self):
        qc = QuantumCircuit(1)
        for _ in range(100):
            qc.h(0)
        text = draw(qc, max_width=40)
        assert all(len(line) <= 40 for line in text.splitlines())
        assert text.endswith("...")

    def test_swap_symbols(self):
        qc = QuantumCircuit(2)
        qc.swap(0, 1)
        lines = draw(qc).splitlines()
        assert "x" in lines[0] and "x" in lines[1]

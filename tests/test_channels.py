"""Unit tests for Kraus channels."""

import math

import numpy as np
import pytest

from repro.sim import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    error_rate_to_depolarizing_param,
    identity_channel,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)


def _max_mixed(n=1):
    d = 2 ** n
    return np.eye(d, dtype=complex) / d


class TestKrausChannel:
    def test_completeness_enforced(self):
        bad = (np.eye(2, dtype=complex) * 0.5,)
        with pytest.raises(ValueError):
            KrausChannel(bad)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            KrausChannel(())

    def test_apply_preserves_trace(self):
        ch = depolarizing_channel(0.3, 1)
        rho = np.array([[0.7, 0.2], [0.2, 0.3]], dtype=complex)
        out = ch.apply(rho)
        assert np.trace(out).real == pytest.approx(1.0)

    def test_compose(self):
        ch = bit_flip_channel(1.0).compose(bit_flip_channel(1.0))
        rho = np.diag([1.0, 0.0]).astype(complex)
        # Two certain X flips = identity.
        assert np.allclose(ch.apply(rho), rho)

    def test_num_qubits(self):
        assert depolarizing_channel(0.1, 2).num_qubits == 2

    def test_embedded_caches(self):
        ch = depolarizing_channel(0.2, 1)
        first = ch.embedded((0,), 2)
        second = ch.embedded((0,), 2)
        assert first is second


class TestDepolarizing:
    def test_full_depolarization_gives_max_mixed(self):
        ch = depolarizing_channel(1.0, 1)
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        assert np.allclose(ch.apply(rho), _max_mixed(), atol=1e-10)

    def test_zero_is_identity(self):
        ch = depolarizing_channel(0.0, 1)
        rho = np.array([[0.6, 0.3], [0.3, 0.4]], dtype=complex)
        assert np.allclose(ch.apply(rho), rho)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            depolarizing_channel(1.5, 1)

    def test_error_rate_conversion(self):
        # 1q: p = 2 * err; 2q: p = 4/3 * err.
        assert error_rate_to_depolarizing_param(0.01, 1) == pytest.approx(0.02)
        assert error_rate_to_depolarizing_param(0.03, 2) == pytest.approx(0.04)

    def test_conversion_clips(self):
        assert error_rate_to_depolarizing_param(0.9, 1) == 1.0

    def test_average_fidelity_matches_error_rate(self):
        # Monte-Carlo check: the channel built from error e has average
        # gate infidelity e.
        err = 0.05
        p = error_rate_to_depolarizing_param(err, 1)
        ch = depolarizing_channel(p, 1)
        rng = np.random.default_rng(3)
        fids = []
        for _ in range(500):
            psi = rng.normal(size=2) + 1j * rng.normal(size=2)
            psi /= np.linalg.norm(psi)
            rho = np.outer(psi, psi.conj())
            fids.append(np.real(psi.conj() @ ch.apply(rho) @ psi))
        assert 1.0 - np.mean(fids) == pytest.approx(err, abs=5e-3)


class TestPauliChannels:
    def test_bit_flip(self):
        ch = bit_flip_channel(1.0)
        rho = np.diag([1.0, 0.0]).astype(complex)
        assert np.allclose(ch.apply(rho), np.diag([0.0, 1.0]))

    def test_phase_flip_kills_coherence(self):
        ch = phase_flip_channel(0.5)
        rho = np.full((2, 2), 0.5, dtype=complex)
        out = ch.apply(rho)
        assert out[0, 1] == pytest.approx(0.0)

    def test_probabilities_over_one_rejected(self):
        with pytest.raises(ValueError):
            pauli_channel({"X": 0.7, "Z": 0.6})

    def test_two_qubit_labels(self):
        ch = pauli_channel({"XX": 0.25})
        assert ch.num_qubits == 2


class TestDamping:
    def test_amplitude_damping_decays_excited(self):
        ch = amplitude_damping_channel(0.4)
        rho = np.diag([0.0, 1.0]).astype(complex)
        out = ch.apply(rho)
        assert out[0, 0].real == pytest.approx(0.4)
        assert out[1, 1].real == pytest.approx(0.6)

    def test_phase_damping_preserves_populations(self):
        ch = phase_damping_channel(0.3)
        rho = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        out = ch.apply(rho)
        assert out[0, 0].real == pytest.approx(0.5)
        assert abs(out[0, 1]) < 0.5

    def test_thermal_relaxation_limits(self):
        t1, t2 = 50_000.0, 70_000.0
        ch = thermal_relaxation_channel(t1, t2, duration=t1)
        rho = np.diag([0.0, 1.0]).astype(complex)
        out = ch.apply(rho)
        assert out[1, 1].real == pytest.approx(math.exp(-1.0), abs=1e-9)

    def test_thermal_relaxation_t2_decay(self):
        t1, t2 = 50_000.0, 40_000.0
        dur = 10_000.0
        ch = thermal_relaxation_channel(t1, t2, dur)
        plus = np.full((2, 2), 0.5, dtype=complex)
        out = ch.apply(plus)
        assert abs(out[0, 1]) == pytest.approx(
            0.5 * math.exp(-dur / t2), abs=1e-9)

    def test_invalid_t2_rejected(self):
        with pytest.raises(ValueError):
            thermal_relaxation_channel(10.0, 25.0, 1.0)

    def test_t2_exactly_twice_t1_accepted(self):
        """Regression: cache-key rounding must not push a valid
        t2 == 2*t1 (the NoiseModel delay clamp) past the tolerance."""
        for t1 in (10.0000000004, 81_234.5678912345, 1.0 / 3.0):
            ch = thermal_relaxation_channel(t1, 2 * t1, 100.0)
            assert ch.num_qubits == 1

    def test_identity_channel(self):
        ch = identity_channel(2)
        rho = np.eye(4, dtype=complex) / 4
        assert np.allclose(ch.apply(rho), rho)

"""Unit tests for the tensored readout mitigator."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.mitigation import ReadoutMitigator, calibrate_readout
from repro.sim import NoiseModel, run_circuit
from repro.sim.executor import Program, run_parallel


def _confusion(p01, p10):
    return np.array([[1 - p01, p10], [p01, 1 - p10]])


class TestReadoutMitigator:
    def test_identity_mitigator_is_noop(self):
        mit = ReadoutMitigator((np.eye(2), np.eye(2)))
        probs = {"01": 0.4, "10": 0.6}
        assert mit.apply(probs) == pytest.approx(probs)

    def test_exact_inversion_single_bit(self):
        true = {"0": 0.8, "1": 0.2}
        conf = _confusion(0.1, 0.05)
        noisy = {
            "0": 0.8 * 0.9 + 0.2 * 0.05,
            "1": 0.8 * 0.1 + 0.2 * 0.95,
        }
        mit = ReadoutMitigator((conf,))
        recovered = mit.apply(noisy)
        assert recovered["0"] == pytest.approx(true["0"], abs=1e-9)
        assert recovered["1"] == pytest.approx(true["1"], abs=1e-9)

    def test_two_bit_inversion(self):
        confs = (_confusion(0.08, 0.12), _confusion(0.03, 0.06))
        mit = ReadoutMitigator(confs)
        true = {"00": 0.5, "11": 0.5}
        # Forward-apply the confusion then invert.
        from repro.sim import apply_readout_confusion

        noisy = apply_readout_confusion(true, confs)
        recovered = mit.apply(noisy)
        for key in true:
            assert recovered.get(key, 0.0) == pytest.approx(true[key],
                                                            abs=1e-9)

    def test_result_clipped_and_normalized(self):
        mit = ReadoutMitigator((_confusion(0.3, 0.3),))
        # A distribution impossible under the model -> quasi-probs clipped.
        out = mit.apply({"0": 0.01, "1": 0.99})
        assert sum(out.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in out.values())

    def test_width_mismatch_rejected(self):
        mit = ReadoutMitigator((np.eye(2),))
        with pytest.raises(ValueError):
            mit.apply({"00": 1.0})

    def test_non_stochastic_matrix_rejected(self):
        with pytest.raises(ValueError):
            ReadoutMitigator((np.array([[0.5, 0.5], [0.1, 0.5]]),))

    def test_assignment_fidelity(self):
        mit = ReadoutMitigator((_confusion(0.1, 0.2),))
        assert mit.assignment_fidelity() == pytest.approx(0.85)


class TestCalibration:
    def test_calibrated_matrices_match_device(self, toronto):
        partition = (0, 1, 2)
        mit = calibrate_readout(toronto, partition, shots=0)
        for i, q in enumerate(partition):
            p01, p10 = toronto.calibration.readout_error[q]
            assert mit.confusions[i][1, 0] == pytest.approx(p01, abs=0.02)
            assert mit.confusions[i][0, 1] == pytest.approx(p10, abs=0.02)

    def test_mitigation_improves_ghz_fidelity(self, toronto):
        partition = (0, 1, 2)
        mit = calibrate_readout(toronto, partition, shots=0)
        qc = ghz_circuit(3).measure_all()
        res = run_parallel([Program(qc, partition)], toronto, shots=0)[0]
        raw = res.probabilities
        mitigated = mit.apply(raw)
        good = lambda d: d.get("000", 0.0) + d.get("111", 0.0)
        assert good(mitigated) > good(raw)

    def test_mitigation_near_exact_when_only_readout_noise(self):
        nm_conf = (0.07, 0.11)
        from repro.hardware import linear_device

        dev = linear_device(2, seed=1)
        # Build a 2q circuit and compare mitigated vs readout-free run.
        qc = ghz_circuit(2).measure_all()
        mit = calibrate_readout(dev, (0, 1), shots=0)
        res = run_parallel([Program(qc, (0, 1))], dev, shots=0)[0]
        mitigated = mit.apply(res.probabilities)
        # Re-run with readout errors zeroed.
        clean_nm = dev.noise_model()
        clean_nm.readout_error = {q: (0.0, 0.0) for q in range(2)}
        from repro.sim import run_circuit as run_c

        clean = run_c(qc, noise_model=clean_nm.restricted((0, 1)),
                      shots=0)
        for key, p in clean.probabilities.items():
            assert mitigated.get(key, 0.0) == pytest.approx(p, abs=5e-3)

"""Unit tests for topologies, calibration, crosstalk, devices."""

import pytest

from repro.hardware import (
    CouplingMap,
    generate_calibration,
    generate_crosstalk_model,
    ibm_manhattan,
    ibm_melbourne,
    ibm_toronto,
    linear_device,
)
from repro.hardware.devices import MELBOURNE_FIG1_CX_PERCENT


class TestCouplingMap:
    def test_edges_normalized_sorted(self):
        cm = CouplingMap(3, [(2, 1), (1, 0)])
        assert cm.edges == ((0, 1), (1, 2))

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CouplingMap(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CouplingMap(2, [(0, 5)])

    def test_distance(self):
        cm = CouplingMap(4, [(0, 1), (1, 2), (2, 3)])
        assert cm.distance(0, 3) == 3
        assert cm.distance(1, 1) == 0

    def test_pair_distance_shared_qubit_is_zero(self):
        cm = CouplingMap(3, [(0, 1), (1, 2)])
        assert cm.pair_distance((0, 1), (1, 2)) == 0

    def test_pair_distance_one_hop(self):
        cm = CouplingMap(4, [(0, 1), (1, 2), (2, 3)])
        assert cm.pair_distance((0, 1), (2, 3)) == 1

    def test_pair_distance_two_hops(self):
        cm = CouplingMap(6, [(i, i + 1) for i in range(5)])
        assert cm.pair_distance((0, 1), (3, 4)) == 2

    def test_one_hop_pairs_of_edge(self):
        cm = CouplingMap(6, [(i, i + 1) for i in range(5)])
        assert cm.one_hop_pairs((0, 1)) == ((2, 3),)

    def test_connected_subset(self):
        cm = CouplingMap(4, [(0, 1), (1, 2), (2, 3)])
        assert cm.is_connected_subset([0, 1, 2])
        assert not cm.is_connected_subset([0, 2])
        assert not cm.is_connected_subset([])

    def test_subgraph_and_boundary_edges(self):
        cm = CouplingMap(4, [(0, 1), (1, 2), (2, 3)])
        assert cm.subgraph_edges([0, 1, 2]) == ((0, 1), (1, 2))
        assert cm.boundary_edges([0, 1]) == ((1, 2),)


class TestCalibration:
    def test_seeded_reproducibility(self):
        cm = CouplingMap(5, [(i, i + 1) for i in range(4)])
        a = generate_calibration(cm, seed=3)
        b = generate_calibration(cm, seed=3)
        assert a.twoq_error == b.twoq_error
        assert a.readout_error == b.readout_error

    def test_all_fields_populated(self):
        cm = CouplingMap(4, [(0, 1), (1, 2), (2, 3)])
        cal = generate_calibration(cm, seed=1)
        assert set(cal.oneq_error) == {0, 1, 2, 3}
        assert set(cal.twoq_error) == set(cm.edges)
        for q in range(4):
            assert cal.t2[q] <= 2 * cal.t1[q] + 1e-6

    def test_error_ranges_physical(self):
        cm = CouplingMap(10, [(i, i + 1) for i in range(9)])
        cal = generate_calibration(cm, seed=5)
        assert all(0 < e < 0.2 for e in cal.twoq_error.values())
        assert all(0 < e < 0.02 for e in cal.oneq_error.values())
        assert all(0 < p01 < 0.3 and 0 < p10 < 0.35
                   for p01, p10 in cal.readout_error.values())

    def test_fixed_cx_errors_pinned(self):
        cm = CouplingMap(3, [(0, 1), (1, 2)])
        cal = generate_calibration(cm, seed=0,
                                   fixed_cx_errors={(1, 0): 0.042})
        assert cal.cx_error(0, 1) == pytest.approx(0.042)

    def test_fixed_cx_error_unknown_link_rejected(self):
        cm = CouplingMap(3, [(0, 1)])
        with pytest.raises(ValueError):
            generate_calibration(cm, seed=0,
                                 fixed_cx_errors={(0, 2): 0.01})

    def test_worst_links(self):
        cm = CouplingMap(10, [(i, i + 1) for i in range(9)])
        cal = generate_calibration(cm, seed=5)
        worst = cal.worst_links(quantile=0.8)
        assert 0 < len(worst) <= 3


class TestCrosstalkModel:
    def test_factors_symmetric_lookup(self):
        cm = CouplingMap(6, [(i, i + 1) for i in range(5)])
        model = generate_crosstalk_model(cm, seed=2)
        e1, e2 = (0, 1), (2, 3)
        assert model.factor(e1, e2) == model.factor(e2, e1)

    def test_distant_pairs_unity(self):
        cm = CouplingMap(6, [(i, i + 1) for i in range(5)])
        model = generate_crosstalk_model(cm, seed=2)
        assert model.factor((0, 1), (4, 5)) == 1.0

    def test_one_hop_pairs_at_least_mild(self):
        cm = CouplingMap(6, [(i, i + 1) for i in range(5)])
        model = generate_crosstalk_model(cm, seed=2, mild_factor=1.2)
        for e1, e2 in cm.all_one_hop_edge_pairs():
            assert model.factor(e1, e2) >= 1.2

    def test_combined_factor_multiplies(self):
        cm = CouplingMap(7, [(i, i + 1) for i in range(6)])
        model = generate_crosstalk_model(cm, seed=0, affected_fraction=1.0,
                                         factor_low=2.0, factor_high=2.0)
        combined = model.combined_factor(
            (2, 3), ((0, 1), (4, 5)))
        assert combined == pytest.approx(4.0)

    def test_affected_pairs_threshold(self):
        cm = CouplingMap(8, [(i, i + 1) for i in range(7)])
        model = generate_crosstalk_model(cm, seed=1, affected_fraction=0.5)
        affected = model.affected_pairs(threshold=1.5)
        assert all(model.factor(*p) >= 1.5 for p in affected)


class TestDevices:
    def test_chip_shapes(self):
        assert ibm_melbourne().num_qubits == 15
        assert ibm_toronto().num_qubits == 27
        assert ibm_manhattan().num_qubits == 65

    def test_link_counts_match_paper_table1(self):
        # Table I's "1-hop pairs" row counts device links.
        assert len(ibm_toronto().coupling.edges) == 28
        assert len(ibm_manhattan().coupling.edges) == 72

    def test_melbourne_fig1_errors_pinned(self):
        dev = ibm_melbourne()
        for edge, percent in MELBOURNE_FIG1_CX_PERCENT.items():
            assert dev.calibration.cx_error(*edge) == pytest.approx(
                percent / 100.0)

    def test_devices_cached(self):
        assert ibm_toronto() is ibm_toronto()

    def test_noise_model_matches_calibration(self, toronto):
        nm = toronto.noise_model()
        assert nm.twoq_error_of(0, 1) == toronto.calibration.cx_error(0, 1)
        assert nm.readout_error_of(5) == pytest.approx(
            toronto.calibration.readout_error_avg(5))

    def test_throughput(self, manhattan):
        assert manhattan.throughput(5) == pytest.approx(5 / 65)

    def test_linear_device(self):
        dev = linear_device(4, seed=0)
        assert dev.coupling.edges == ((0, 1), (1, 2), (2, 3))


class TestNoiseModelRestriction:
    def test_restricted_remaps_indices(self, toronto):
        nm = toronto.noise_model()
        sub = nm.restricted((3, 5, 8))
        # local (0,1) is physical (3,5); (1,2) is (5,8).
        assert sub.twoq_error_of(0, 1) == toronto.calibration.cx_error(3, 5)
        assert sub.twoq_error_of(1, 2) == toronto.calibration.cx_error(5, 8)
        assert sub.oneq_error_of(2) == toronto.calibration.oneq_error[8]

    def test_restricted_drops_external_edges(self, toronto):
        nm = toronto.noise_model()
        sub = nm.restricted((0, 1))
        assert sub.twoq_error_of(0, 1) > 0
        assert len(sub.twoq_error) == 1

"""Unit tests for the observable estimator."""

import pytest

from repro.circuits import QuantumCircuit, bell_pair
from repro.sim import estimate_expectation, estimate_expectation_on_device
from repro.vqe import PauliOperator, h2_hamiltonian, ryrz_ansatz, vqe_energy_ideal


class TestIdealEstimator:
    def test_matches_direct_expectation(self):
        for theta in (-1.0, 0.3, 2.2):
            est = estimate_expectation(ryrz_ansatz([theta]),
                                       h2_hamiltonian())
            assert est.value == pytest.approx(vqe_energy_ideal(theta),
                                              abs=1e-9)

    def test_group_breakdown_sums(self):
        est = estimate_expectation(ryrz_ansatz([0.7]), h2_hamiltonian())
        assert sum(est.group_values) == pytest.approx(est.value)
        assert est.num_circuits == 2

    def test_bell_state_zz(self):
        op = PauliOperator({"ZZ": 1.0})
        est = estimate_expectation(bell_pair(), op)
        assert est.value == pytest.approx(1.0)

    def test_bell_state_xx(self):
        op = PauliOperator({"XX": 1.0})
        est = estimate_expectation(bell_pair(), op)
        assert est.value == pytest.approx(1.0)

    def test_qubit_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimate_expectation(QuantumCircuit(3),
                                 PauliOperator({"ZZ": 1.0}))


class TestDeviceEstimator:
    def test_noisy_estimate_attenuated(self, toronto):
        """Depolarizing noise pulls |<H>| toward zero, never past it."""
        op = PauliOperator({"ZZ": 1.0})
        est = estimate_expectation_on_device(
            bell_pair(), op, toronto, shots=0, parallel=False)
        assert 0.5 < est.value < 1.0

    def test_parallel_runs_all_groups_at_once(self, manhattan):
        est = estimate_expectation_on_device(
            ryrz_ansatz([0.4]), h2_hamiltonian(), manhattan, shots=0,
            parallel=True)
        assert est.num_circuits == 2
        ideal = vqe_energy_ideal(0.4)
        assert abs(est.value - ideal) < 0.35

    def test_sequential_close_to_parallel(self, manhattan):
        seq = estimate_expectation_on_device(
            ryrz_ansatz([0.4]), h2_hamiltonian(), manhattan, shots=0,
            parallel=False, seed=1)
        par = estimate_expectation_on_device(
            ryrz_ansatz([0.4]), h2_hamiltonian(), manhattan, shots=0,
            parallel=True, seed=1)
        assert abs(seq.value - par.value) < 0.2

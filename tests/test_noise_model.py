"""Unit tests for NoiseModel channel construction."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.circuit import Instruction
from repro.circuits.gates import Gate, gate
from repro.sim import NoiseModel


def _inst(name, qubits, *params):
    return Instruction(gate(name, *params), tuple(qubits))


@pytest.fixture
def model():
    return NoiseModel(
        oneq_error={0: 1e-3, 1: 2e-3},
        twoq_error={(0, 1): 1e-2, (1, 2): 3e-2},
        readout_error={0: (0.02, 0.04)},
        t1={0: 100_000.0},
        t2={0: 80_000.0},
        detuning={0: 1e-5},
    )


class TestLookups:
    def test_oneq_error(self, model):
        assert model.oneq_error_of(0) == 1e-3
        assert model.oneq_error_of(9) == 0.0

    def test_twoq_error_order_insensitive(self, model):
        assert model.twoq_error_of(1, 0) == 1e-2
        assert model.twoq_error_of(0, 1) == 1e-2
        assert model.twoq_error_of(0, 5) == 0.0

    def test_readout_symmetrized(self, model):
        assert model.readout_error_of(0) == pytest.approx(0.03)
        assert model.readout_error_of(7) == 0.0

    def test_confusion_matrix(self, model):
        conf = model.confusion_matrix(0)
        assert conf[1, 0] == pytest.approx(0.02)
        assert conf[0, 1] == pytest.approx(0.04)
        assert np.allclose(conf.sum(axis=0), 1.0)

    def test_detuning(self, model):
        assert model.detuning_of(0) == 1e-5
        assert model.detuning_of(3) == 0.0


class TestChannelFor:
    def test_oneq_channel(self, model):
        ch = model.channel_for(_inst("x", [0]))
        assert ch is not None
        assert ch.num_qubits == 1

    def test_twoq_channel(self, model):
        ch = model.channel_for(_inst("cx", [0, 1]))
        assert ch is not None
        assert ch.num_qubits == 2

    def test_zero_error_gives_none(self, model):
        assert model.channel_for(_inst("x", [5])) is None

    def test_directives_noiseless(self, model):
        assert model.channel_for(
            Instruction(Gate("barrier", 1), (0,))) is None
        assert model.channel_for(
            Instruction(Gate("measure", 1), (0,), (0,))) is None

    def test_error_scale_amplifies(self, model):
        base = model.channel_for(_inst("cx", [0, 1]))
        boosted = model.channel_for(_inst("cx", [0, 1]), error_scale=4.0)
        # Identity Kraus weight shrinks when the error grows.
        w_base = np.abs(base.operators[0][0, 0]) ** 2
        w_boost = np.abs(boosted.operators[0][0, 0]) ** 2
        assert w_boost < w_base

    def test_scale_caps_at_valid_probability(self, model):
        ch = model.channel_for(_inst("cx", [1, 2]), error_scale=1e6)
        assert ch is not None  # clipped, not crashing

    def test_threeq_gate_approximated(self, model):
        model.twoq_error[(0, 2)] = 2e-2
        ch = model.channel_for(_inst("ccx", [0, 1, 2]))
        assert ch is not None
        assert ch.num_qubits == 2

    def test_delay_channel_requires_t1(self, model):
        ch = model.channel_for(
            Instruction(Gate("delay", 1, (1000.0,)), (0,)))
        assert ch is not None
        none_ch = model.channel_for(
            Instruction(Gate("delay", 1, (1000.0,)), (1,)))
        assert none_ch is None  # qubit 1 has no T1 data

    def test_zero_duration_delay_noiseless(self, model):
        ch = model.channel_for(
            Instruction(Gate("delay", 1, (0.0,)), (0,)))
        assert ch is None


class TestRestriction:
    def test_restriction_preserves_durations(self, model):
        model.gate_duration["cx"] = 300.0
        sub = model.restricted((1, 2))
        assert sub.gate_duration["cx"] == 300.0

    def test_restriction_remaps_everything(self, model):
        sub = model.restricted((1, 0))
        # local 0 = physical 1, local 1 = physical 0.
        assert sub.oneq_error_of(0) == 2e-3
        assert sub.oneq_error_of(1) == 1e-3
        assert sub.twoq_error_of(0, 1) == 1e-2
        assert sub.detuning_of(1) == 1e-5

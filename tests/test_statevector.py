"""Unit tests for the statevector simulator."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit, random_circuit
from repro.sim import (
    circuit_unitary,
    ideal_counts,
    ideal_probabilities,
    simulate_statevector,
)


class TestStatevector:
    def test_initial_state_is_zero(self):
        sv = simulate_statevector(QuantumCircuit(2))
        assert np.allclose(sv, [1, 0, 0, 0])

    def test_x_flips_msb_convention(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        sv = simulate_statevector(qc)
        # Big-endian: qubit 0 is the most significant bit -> index 2.
        assert np.allclose(sv, [0, 0, 1, 0])

    def test_matches_unitary_action(self):
        qc = random_circuit(4, 6, seed=9)
        sv = simulate_statevector(qc)
        u = circuit_unitary(qc)
        assert np.allclose(sv, u[:, 0], atol=1e-10)

    def test_custom_initial_state(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        plus = np.array([1, 1]) / math.sqrt(2)
        sv = simulate_statevector(qc, initial_state=plus)
        assert np.allclose(sv, plus)

    def test_norm_preserved(self):
        qc = random_circuit(5, 10, seed=4)
        sv = simulate_statevector(qc)
        assert np.sum(np.abs(sv) ** 2) == pytest.approx(1.0)

    def test_reset_rejected(self):
        qc = QuantumCircuit(1)
        qc.reset(0)
        with pytest.raises(ValueError):
            simulate_statevector(qc)

    def test_wrong_initial_size_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            simulate_statevector(qc, initial_state=np.ones(3))


class TestIdealProbabilities:
    def test_unmeasured_reports_all_qubits(self):
        probs = ideal_probabilities(ghz_circuit(3))
        assert probs == pytest.approx({"000": 0.5, "111": 0.5})

    def test_measured_subset_marginalizes(self):
        qc = ghz_circuit(3)
        qc.num_clbits = 1
        qc.measure(0, 0)
        probs = ideal_probabilities(qc)
        assert probs == pytest.approx({"0": 0.5, "1": 0.5})

    def test_clbit_order_is_key_position(self):
        qc = QuantumCircuit(2, 2)
        qc.x(0)
        # qubit 0 (|1>) measured into clbit 1: key should be "01".
        qc.measure(0, 1)
        qc.measure(1, 0)
        probs = ideal_probabilities(qc)
        assert probs == pytest.approx({"01": 1.0})


class TestIdealCounts:
    def test_counts_sum_to_shots(self):
        qc = ghz_circuit(2).measure_all()
        counts = ideal_counts(qc, shots=1000, seed=1)
        assert sum(counts.values()) == 1000
        assert set(counts) <= {"00", "11"}

    def test_deterministic_for_seed(self):
        qc = ghz_circuit(2).measure_all()
        assert ideal_counts(qc, 100, seed=5) == ideal_counts(qc, 100, seed=5)

"""Unit tests for the batched execution API (run_batch + ExecutionCache)."""

import pytest

from repro.core import (
    BatchJob,
    ExecutionCache,
    execute_allocation,
    qucp_allocate,
    run_batch,
)
from repro.transpiler import transpile_for_partition
from repro.workloads import workload


def _allocation(device, names=("lin", "adder")):
    circuits = [workload(n).circuit() for n in names]
    return qucp_allocate(circuits, device)


class TestRunBatch:
    def test_matches_individual_execution(self, toronto):
        alloc = _allocation(toronto)
        batched = run_batch(
            [BatchJob(alloc, shots=0), BatchJob(alloc, shots=0)])
        single = execute_allocation(alloc, shots=0)
        for outcomes in batched:
            for got, want in zip(outcomes, single):
                assert got.result.probabilities == pytest.approx(
                    want.result.probabilities)
                assert got.ideal == pytest.approx(want.ideal)

    def test_accepts_bare_allocation_results(self, toronto):
        alloc = _allocation(toronto, names=("lin",))
        outcomes = run_batch([alloc], seed=0)
        assert len(outcomes) == 1
        assert sum(outcomes[0][0].result.counts.values()) == 8192

    def test_batch_seed_reproducible_and_per_job_independent(self, toronto):
        alloc = _allocation(toronto, names=("adder",))
        jobs = lambda: [BatchJob(alloc, shots=512), BatchJob(alloc, shots=512)]
        a = run_batch(jobs(), seed=7)
        b = run_batch(jobs(), seed=7)
        assert a[0][0].result.counts == b[0][0].result.counts
        assert a[1][0].result.counts == b[1][0].result.counts
        # Independent child streams: identical jobs sample differently.
        assert a[0][0].result.counts != a[1][0].result.counts

    def test_explicit_job_seed_pins_job(self, toronto):
        alloc = _allocation(toronto, names=("adder",))
        a = run_batch([BatchJob(alloc, shots=256, seed=5)], seed=1)
        b = run_batch([BatchJob(alloc, shots=256, seed=5)], seed=2)
        assert a[0][0].result.counts == b[0][0].result.counts


class TestExecutionCache:
    def test_transpile_cached_across_jobs(self, toronto):
        calls = []

        def counting_transpiler(circuit, device, allocation):
            calls.append(allocation.partition)
            return transpile_for_partition(circuit, device,
                                           allocation.partition)

        alloc = _allocation(toronto)
        cache = ExecutionCache()
        run_batch(
            [BatchJob(alloc, shots=0, transpiler_fn=counting_transpiler),
             BatchJob(alloc, shots=0, transpiler_fn=counting_transpiler)],
            cache=cache)
        # Two jobs x two programs, but each program transpiles once.
        assert len(calls) == 2
        assert cache.transpile_misses == 2
        assert cache.transpile_hits == 2

    def test_ideal_distribution_cached(self, toronto):
        alloc = _allocation(toronto, names=("lin", "lin", "lin"))
        cache = ExecutionCache()
        run_batch([BatchJob(alloc, shots=0)], cache=cache)
        # Three copies of the same workload: one ideal computation.
        assert cache.ideal_misses == 1
        assert cache.ideal_hits == 2

    def test_equal_circuits_share_entries_across_instances(self, toronto):
        # Structurally identical circuits built twice hit the same key.
        cache = ExecutionCache()
        run_batch([BatchJob(_allocation(toronto, names=("adder",)), shots=0),
                   BatchJob(_allocation(toronto, names=("adder",)), shots=0)],
                  cache=cache)
        assert cache.transpile_hits >= 1
        assert cache.ideal_hits >= 1

    def test_outcomes_do_not_alias_cached_objects(self, toronto):
        """Mutating one outcome's ideal dict or transpiled circuit must
        not corrupt siblings or later cache hits."""
        alloc = _allocation(toronto, names=("lin", "lin"))
        cache = ExecutionCache()
        first = run_batch([BatchJob(alloc, shots=0)], cache=cache)[0]
        assert first[0].transpiled is not first[1].transpiled
        assert first[0].transpiled.circuit is not first[1].transpiled.circuit
        assert (first[0].transpiled.final_layout
                is not first[1].transpiled.final_layout)
        first[0].ideal.clear()
        first[0].transpiled.circuit._instructions.clear()  # noqa: SLF001
        layout = first[0].transpiled.final_layout
        before = layout.as_dict()
        layout.swap_physical(layout.physical(0), layout.physical(1))
        assert layout.as_dict() != before  # the mutation really happened
        again = run_batch([BatchJob(alloc, shots=0)], cache=cache)[0]
        assert len(again[0].ideal) > 0
        assert len(again[0].transpiled.circuit) > 0
        assert again[0].transpiled.final_layout.as_dict() == before

    def test_max_entries_evicts_oldest(self, toronto):
        cache = ExecutionCache(max_entries=1)
        run_batch([BatchJob(_allocation(toronto, names=("lin", "adder")),
                            shots=0)], cache=cache)
        assert len(cache._ideal) == 1  # noqa: SLF001
        assert len(cache._transpile) == 1  # noqa: SLF001
        cache.clear()
        assert len(cache._ideal) == 0  # noqa: SLF001

    def test_max_entries_zero_disables_caching(self, toronto):
        cache = ExecutionCache(max_entries=0)
        alloc = _allocation(toronto, names=("lin",))
        run_batch([BatchJob(alloc, shots=0), BatchJob(alloc, shots=0)],
                  cache=cache)
        assert cache.transpile_hits == 0
        assert len(cache._transpile) == 0  # noqa: SLF001

    def test_cache_sensitive_to_partition(self, toronto):
        """Same circuit on a different partition must re-transpile."""
        cache = ExecutionCache()
        circuit = workload("adder").circuit()
        a1 = qucp_allocate([circuit], toronto)
        # Force a different placement by occupying the best partition.
        a2 = qucp_allocate([workload("adder").circuit(),
                            workload("adder").circuit()], toronto)
        parts = {a1.allocations[0].partition}
        parts.update(a.partition for a in a2.allocations)
        run_batch([BatchJob(a1, shots=0), BatchJob(a2, shots=0)],
                  cache=cache)
        assert cache.transpile_misses == len(parts)

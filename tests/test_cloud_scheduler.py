"""Semantics of the discrete-event cloud scheduler.

Covers the acceptance points: threshold=0 single-device service equals
the analytic serial FIFO model, arrival-time batching boundaries (late
arrivals never join an in-flight batch), the rejection path, batching
windows, priorities, fleet placement policies, and equivalence with the
pre-refactor ``OnlineScheduler`` on recorded golden traces.
"""

import json
import os

import pytest

from repro.circuits import ghz_circuit
from repro.core import (
    CloudScheduler,
    JobSpec,
    OnlineScheduler,
    SubmittedProgram,
    allocation_engine,
    get_allocator,
    simulate_fifo_queue,
)
from repro.hardware import DeviceFleet, ibm_melbourne, linear_device
from repro.sim.executor import program_duration
from repro.workloads import workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "allocator_golden.json")


def _stream(names, spacing_ns=0.0, **kwargs):
    return [
        SubmittedProgram(workload(n).circuit(), arrival_ns=i * spacing_ns,
                         user=f"user{i}", **kwargs)
        for i, n in enumerate(names)
    ]


@pytest.fixture(scope="module")
def line8_pair():
    return (linear_device(8, seed=11), linear_device(8, seed=12))


class TestGoldenTraces:
    def test_event_engine_reproduces_legacy_scheduler(self, toronto):
        """The discrete-event engine must replay the synchronous
        pre-refactor OnlineScheduler traces bit-for-bit."""
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)["scheduler"]
        for name, entry in golden.items():
            subs = [
                SubmittedProgram(workload(n).circuit(),
                                 arrival_ns=i * entry["spacing_ns"],
                                 user=f"user{i}")
                for i, n in enumerate(entry["workloads"])
            ]
            out = OnlineScheduler(
                toronto,
                fidelity_threshold=entry["threshold"]).schedule(subs)
            assert out.num_jobs == entry["num_jobs"], name
            assert out.makespan_ns == pytest.approx(
                entry["makespan_ns"]), name
            assert out.mean_turnaround_ns == pytest.approx(
                entry["mean_turnaround_ns"]), name
            assert out.mean_throughput == pytest.approx(
                entry["mean_throughput"]), name
            members = [sorted(a.index for a in b.allocations)
                       for b in out.batches]
            assert members == entry["batch_members"], name
            assert out.rejected == []


class TestSerialDegeneracy:
    def test_threshold_zero_equals_fifo_queue(self, toronto):
        """Identical copies contend for one best region, so threshold=0
        single-device service is exactly the analytic FIFO model."""
        n = 4
        subs = _stream(["adder"] * n, spacing_ns=1.2e6)
        scheduler = OnlineScheduler(toronto, fidelity_threshold=0.0)
        out = scheduler.schedule(subs)
        assert out.num_jobs == n

        exec_ns = scheduler.job_overhead_ns + program_duration(
            subs[0].circuit, toronto.calibration.gate_duration)
        fifo = simulate_fifo_queue([
            JobSpec(exec_ns, arrival_ns=s.arrival_ns) for s in subs])
        for i in range(n):
            assert out.completion_ns[i] == pytest.approx(
                fifo.completion_ns[i])
        assert out.makespan_ns == pytest.approx(fifo.makespan_ns)
        assert out.mean_turnaround_ns == pytest.approx(
            fifo.mean_turnaround_ns)

    def test_max_batch_size_one_is_strict_serial(self, toronto):
        """Mixed circuits can co-schedule even at threshold=0 (exactly-
        zero degradation joins); max_batch_size=1 must forbid it and
        match the analytic FIFO model."""
        names = ["adder", "fredkin", "lin", "4mod", "bell"]
        subs = _stream(names, spacing_ns=2e5)
        scheduler = CloudScheduler(toronto, fidelity_threshold=0.0,
                                   max_batch_size=1)
        out = scheduler.schedule(subs)
        assert out.num_jobs == len(subs)
        assert all(len(b.allocations) == 1 for b in out.batches)

        fifo = simulate_fifo_queue([
            JobSpec(scheduler.job_overhead_ns + program_duration(
                s.circuit, toronto.calibration.gate_duration),
                arrival_ns=s.arrival_ns)
            for s in subs])
        for i in range(len(subs)):
            assert out.completion_ns[i] == pytest.approx(
                fifo.completion_ns[i])

    def test_invalid_max_batch_size_rejected(self, toronto):
        with pytest.raises(ValueError):
            CloudScheduler(toronto, max_batch_size=0)


class TestBatchingBoundaries:
    def test_late_arrival_never_joins_in_flight_batch(self, toronto):
        """Program 1 arrives just after program 0 dispatched: it must
        wait for the next job even though the batch is still running."""
        subs = [
            SubmittedProgram(workload("adder").circuit(), arrival_ns=0.0),
            SubmittedProgram(workload("fredkin").circuit(),
                             arrival_ns=100.0),
        ]
        out = CloudScheduler(toronto, fidelity_threshold=1.0).schedule(subs)
        assert out.num_jobs == 2
        assert out.jobs[0].members == (0,)
        assert out.jobs[1].start_ns >= out.jobs[0].end_ns

    def test_batch_window_collects_arrivals(self, toronto):
        subs = [
            SubmittedProgram(workload("adder").circuit(), arrival_ns=0.0),
            SubmittedProgram(workload("fredkin").circuit(),
                             arrival_ns=5e4),
        ]
        eager = CloudScheduler(toronto,
                               fidelity_threshold=1.0).schedule(subs)
        windowed = CloudScheduler(
            toronto, fidelity_threshold=1.0,
            batch_window_ns=2e5).schedule(subs)
        assert eager.num_jobs == 2
        assert windowed.num_jobs == 1
        assert windowed.jobs[0].start_ns == pytest.approx(2e5)
        assert windowed.jobs[0].members == (0, 1)


class TestRejection:
    def test_oversized_for_whole_fleet_rejected(self, line5):
        subs = [SubmittedProgram(ghz_circuit(6).measure_all()),
                SubmittedProgram(workload("adder").circuit())]
        out = CloudScheduler(line5, fidelity_threshold=1.0).schedule(subs)
        assert out.rejected == [0]
        assert list(out.completion_ns) == [1]

    def test_blocked_head_does_not_idle_other_devices(self, line5):
        """Work-conserving dispatch: a head waiting for the one busy
        device that fits it must not keep later programs off idle
        devices."""
        fleet = DeviceFleet([line5, ibm_melbourne()],
                            policy="round_robin")
        subs = [
            SubmittedProgram(ghz_circuit(6).measure_all(),
                             arrival_ns=0.0),
            SubmittedProgram(ghz_circuit(6).measure_all(),
                             arrival_ns=1.0),
            SubmittedProgram(workload("adder").circuit(), arrival_ns=2.0),
        ]
        out = CloudScheduler(fleet, fidelity_threshold=1.0).schedule(subs)
        assert out.rejected == []
        adder_job = next(j for j in out.jobs if j.members == (2,))
        first_ghz = next(j for j in out.jobs if j.members == (0,))
        # The adder dispatched onto the idle line5 at its arrival, not
        # after Melbourne freed up.
        assert adder_job.device_name == "linear5"
        assert adder_job.start_ns == pytest.approx(2.0)
        assert adder_job.start_ns < first_ghz.end_ns
        # FIFO position preserved: the second ghz still runs on
        # Melbourne as soon as it frees.
        second_ghz = next(j for j in out.jobs if j.members == (1,))
        assert second_ghz.start_ns == pytest.approx(first_ghz.end_ns)

    def test_program_waits_for_the_device_it_fits(self, line5):
        """6q program fits Melbourne but not the 5q line: it must be
        routed there, not rejected."""
        fleet = DeviceFleet([line5, ibm_melbourne()],
                            policy="round_robin")
        subs = [SubmittedProgram(ghz_circuit(6).measure_all()),
                SubmittedProgram(workload("adder").circuit())]
        out = CloudScheduler(fleet, fidelity_threshold=0.0).schedule(subs)
        assert out.rejected == []
        assert out.jobs[0].device_name == "ibm_melbourne"
        assert out.jobs[0].members == (0,)


class TestPriorities:
    def test_open_window_priority_head_does_not_idle_device(self, toronto):
        """A high-priority arrival still inside its batching window must
        not hold the device idle while a window-closed lower-priority
        program is ready to run."""
        subs = [
            SubmittedProgram(workload("adder").circuit(), arrival_ns=0.0),
            SubmittedProgram(workload("adder").circuit(),
                             arrival_ns=9e5, priority=5),
        ]
        out = CloudScheduler(toronto, fidelity_threshold=0.0,
                             batch_window_ns=1e6).schedule(subs)
        # The low-priority program dispatches when its own window closes
        # (t=1e6), not when the priority head's window closes (t=1.9e6).
        assert out.jobs[0].members == (0,)
        assert out.jobs[0].start_ns == pytest.approx(1e6)

    def test_high_priority_served_first(self, toronto):
        subs = [
            SubmittedProgram(workload("adder").circuit(), user="u0"),
            SubmittedProgram(workload("adder").circuit(), user="u1"),
            SubmittedProgram(workload("adder").circuit(), user="vip",
                             priority=5),
        ]
        out = CloudScheduler(toronto, fidelity_threshold=0.0).schedule(subs)
        assert out.num_jobs == 3
        assert out.jobs[0].members == (2,)
        assert out.completion_ns[2] < out.completion_ns[0]


class TestFleetPolicies:
    def _timeline(self, line8_pair, policy):
        fleet = DeviceFleet(line8_pair, policy=policy)
        subs = [
            SubmittedProgram(workload("alu-v0_27").circuit(),
                             arrival_ns=0.0),
            SubmittedProgram(workload("adder").circuit(), arrival_ns=10.0),
            SubmittedProgram(workload("adder").circuit(), arrival_ns=1e7),
        ]
        return CloudScheduler(
            fleet, fidelity_threshold=0.0).schedule(subs), subs

    def test_round_robin_rotates(self, line8_pair):
        out, _ = self._timeline(line8_pair, "round_robin")
        # alu -> device0, adder -> device1 (0 busy), cursor back to 0.
        assert [j.device_index for j in out.jobs] == [0, 1, 0]

    def test_least_loaded_balances(self, line8_pair):
        out, _ = self._timeline(line8_pair, "least_loaded")
        # Device 0 carried the long alu job, so the late adder goes to 1.
        assert [j.device_index for j in out.jobs] == [0, 1, 1]

    def test_best_fidelity_picks_lowest_solo_efs(self, line8_pair):
        out, subs = self._timeline(line8_pair, "best_fidelity")
        allocator = get_allocator("qucp")
        solo = [
            allocation_engine(dev).solo_best(allocator, subs[2].circuit)
            for dev in line8_pair
        ]
        expected = min(range(2), key=lambda i: solo[i].efs)
        assert out.jobs[2].device_index == expected

    def test_two_device_fleet_halves_turnaround(self, line8_pair):
        subs = _stream(["adder"] * 6)
        serial = CloudScheduler(line8_pair[0],
                                fidelity_threshold=0.0).schedule(subs)
        fleet = CloudScheduler(DeviceFleet(line8_pair),
                               fidelity_threshold=0.0).schedule(subs)
        assert fleet.mean_turnaround_ns < 0.7 * serial.mean_turnaround_ns
        busy = fleet.device_busy_ns()
        assert len(busy) == 2  # both devices actually served jobs


class TestConfigurationErrors:
    def test_non_incremental_allocator_rejected(self, toronto):
        with pytest.raises(ValueError):
            CloudScheduler(toronto, allocator="cna")

    def test_negative_window_rejected(self, toronto):
        with pytest.raises(ValueError):
            CloudScheduler(toronto, batch_window_ns=-1.0)

    def test_negative_threshold_rejected(self, toronto):
        with pytest.raises(ValueError):
            CloudScheduler(toronto, fidelity_threshold=-0.1)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            DeviceFleet([])

    def test_unknown_policy_rejected(self, line5):
        with pytest.raises(ValueError):
            DeviceFleet([line5], policy="random")

    def test_sigma_with_explicit_allocator_rejected(self, toronto):
        """sigma only parameterizes the default QuCP allocator; pairing
        it with an explicit allocator must fail loudly, not be silently
        ignored."""
        from repro.core import select_parallel_count
        from repro.workloads import workload

        with pytest.raises(ValueError):
            CloudScheduler(toronto, allocator="qucp", sigma=8.0)
        with pytest.raises(ValueError):
            select_parallel_count(workload("adder").circuit(), toronto,
                                  threshold=0.5, sigma=8.0,
                                  allocator="qucp")

    def test_sigma_configures_default_allocator(self, toronto):
        scheduler = CloudScheduler(toronto, sigma=8.0)
        assert scheduler.allocator.sigma == 8.0

    def test_allocator_registry_drives_scheduler(self, toronto):
        """Every incremental registry method can serve the queue."""
        subs = _stream(["adder", "fredkin"])
        for name in ("qucp", "qumc", "qucloud", "multiqc"):
            out = CloudScheduler(
                toronto, allocator=name,
                fidelity_threshold=1.0).schedule(subs)
            assert sorted(out.completion_ns) == [0, 1], name

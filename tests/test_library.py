"""Unit tests for the circuit constructors."""

import math

import numpy as np
import pytest

from repro.circuits import (
    bell_pair,
    ghz_circuit,
    qft_circuit,
    random_circuit,
    w_state_circuit,
)
from repro.sim import simulate_statevector


class TestBellAndGhz:
    def test_bell_amplitudes(self):
        sv = simulate_statevector(bell_pair())
        assert sv[0] == pytest.approx(1 / math.sqrt(2))
        assert sv[3] == pytest.approx(1 / math.sqrt(2))
        assert abs(sv[1]) < 1e-12 and abs(sv[2]) < 1e-12

    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_ghz_amplitudes(self, n):
        sv = simulate_statevector(ghz_circuit(n))
        assert abs(sv[0]) == pytest.approx(1 / math.sqrt(2))
        assert abs(sv[-1]) == pytest.approx(1 / math.sqrt(2))
        assert np.sum(np.abs(sv) ** 2) == pytest.approx(1.0)

    def test_ghz_rejects_zero_qubits(self):
        with pytest.raises(ValueError):
            ghz_circuit(0)


class TestWState:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_w_state_uniform_single_excitation(self, n):
        sv = simulate_statevector(w_state_circuit(n))
        expected_amp = 1 / math.sqrt(n)
        for idx, amp in enumerate(sv):
            ones = bin(idx).count("1")
            if ones == 1:
                assert abs(amp) == pytest.approx(expected_amp, abs=1e-9)
            else:
                assert abs(amp) < 1e-9


class TestQft:
    def test_qft_of_zero_is_uniform(self):
        sv = simulate_statevector(qft_circuit(3))
        assert np.allclose(np.abs(sv), 1 / math.sqrt(8))

    def test_qft_matrix_matches_dft(self):
        from repro.sim import circuit_unitary

        n = 3
        u = circuit_unitary(qft_circuit(n))
        dim = 2 ** n
        omega = np.exp(2j * math.pi / dim)
        dft = np.array([[omega ** (j * k) for k in range(dim)]
                        for j in range(dim)]) / math.sqrt(dim)
        assert np.allclose(u, dft, atol=1e-9)


class TestRandomCircuit:
    def test_deterministic_for_seed(self):
        a = random_circuit(4, 5, seed=3)
        b = random_circuit(4, 5, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_circuit(4, 5, seed=3)
        b = random_circuit(4, 5, seed=4)
        assert a != b

    def test_respects_qubit_count(self):
        qc = random_circuit(3, 10, seed=0)
        assert all(max(i.qubits) < 3 for i in qc)

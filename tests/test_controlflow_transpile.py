"""Transpiler integration for dynamic circuits: expansion inside
``transpile()``, the routing-free dynamic pipeline, delay merging, and
the DD strategy knob."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.circuit import CircuitError
from repro.circuits.controlflow import has_control_flow
from repro.hardware import linear_device
from repro.hardware.topology import CouplingMap
from repro.sim import NoiseModel, simulate_density_matrix
from repro.transpiler import combine_adjacent_delays, transpile


def _resolvable():
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    body = QuantumCircuit(2, 2)
    body.x(0)
    body.x(0)
    qc.for_loop(range(3), body)
    qc.cx(0, 1)
    qc.measure(0, 0)
    qc.measure(1, 1)
    return qc


def _dynamic():
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.measure(0, 0)
    fix = QuantumCircuit(2, 2)
    fix.x(1)
    qc.if_test(([0], 1), fix)
    qc.measure(1, 1)
    return qc


class TestCombineAdjacentDelays:
    def test_merges_same_qubit_runs(self):
        qc = QuantumCircuit(1, 0)
        qc.delay(0, 10.0)
        qc.delay(0, 20.0)
        qc.delay(0, 30.0)
        out = combine_adjacent_delays(qc)
        assert len(out) == 1
        assert out.instructions[0].params[0] == pytest.approx(60.0)

    def test_zero_duration_dropped(self):
        qc = QuantumCircuit(1, 0)
        qc.x(0)
        qc.delay(0, 0.0)
        qc.x(0)
        out = combine_adjacent_delays(qc)
        assert [i.name for i in out] == ["x", "x"]

    def test_no_merge_across_gates(self):
        qc = QuantumCircuit(1, 0)
        qc.delay(0, 10.0)
        qc.x(0)
        qc.delay(0, 20.0)
        out = combine_adjacent_delays(qc)
        assert [i.name for i in out] == ["delay", "x", "delay"]

    def test_no_merge_across_qubits(self):
        qc = QuantumCircuit(2, 0)
        qc.delay(0, 10.0)
        qc.delay(1, 20.0)
        qc.delay(0, 30.0)
        out = combine_adjacent_delays(qc)
        # Interleaved qubits flush the pending run: order is preserved.
        assert [(i.qubits[0], i.params[0]) for i in out] == [
            (0, 10.0), (1, 20.0), (0, 30.0)]

    def test_merge_preserves_noise_semantics(self):
        nm = NoiseModel(t1={0: 50_000.0}, t2={0: 40_000.0},
                        detuning={0: 1e-4})
        qc = QuantumCircuit(1, 0)
        qc.h(0)
        qc.delay(0, 700.0)
        qc.delay(0, 1_300.0)
        merged = combine_adjacent_delays(qc)
        rho_a = simulate_density_matrix(qc, nm)
        rho_b = simulate_density_matrix(merged, nm)
        assert np.allclose(rho_a, rho_b, atol=1e-12)


class TestTranspileControlFlow:
    def test_resolvable_circuit_flattens(self):
        dev = linear_device(3, seed=1)
        result = transpile(_resolvable(), dev.coupling, dev.calibration)
        assert not has_control_flow(result.circuit)

    def test_dynamic_circuit_keeps_ops_and_swaps_zero(self):
        dev = linear_device(3, seed=1)
        result = transpile(_dynamic(), dev.coupling, dev.calibration,
                           schedule=True)
        assert has_control_flow(result.circuit)
        assert result.num_swaps == 0
        assert result.circuit.num_qubits == dev.coupling.num_qubits

    def test_dynamic_rejects_unroutable_bodies(self):
        # A body needing a triangle of interactions cannot be placed
        # routing-free on a 3-qubit line.
        line = CouplingMap(3, [(0, 1), (1, 2)])
        qc = QuantumCircuit(3, 3)
        qc.h(0)
        qc.measure(0, 0)
        body = QuantumCircuit(3, 3)
        body.cx(0, 1)
        body.cx(1, 2)
        body.cx(0, 2)
        qc.if_test(([0], 1), body)
        with pytest.raises(CircuitError, match="SWAP routing"):
            transpile(qc, line)

    def test_scheduled_default_has_no_adjacent_delays(self):
        dev = linear_device(3, seed=1)
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure(0, 0)
        qc.measure(1, 1)
        result = transpile(qc, dev.coupling, dev.calibration,
                           schedule=True)
        prev_delay_qubit = None
        for inst in result.circuit:
            if inst.name == "delay":
                assert inst.qubits[0] != prev_delay_qubit
                prev_delay_qubit = inst.qubits[0]
            else:
                prev_delay_qubit = None


class TestTranspileDD:
    def test_dd_inserts_pulses_into_idle(self):
        dev = linear_device(3, seed=1)
        qc = QuantumCircuit(3, 3)
        qc.x(2)
        qc.barrier(0, 1, 2)  # pins the X early: qubit 2 then idles
        qc.h(0)
        for i in range(6):
            qc.cx(0, 1)
            qc.rx(0.3 + 0.1 * i, 0)  # keeps the run from cancelling
        for q in range(3):
            qc.measure(q, q)
        plain = transpile(qc, dev.coupling, dev.calibration,
                          schedule=True)
        decoupled = transpile(qc, dev.coupling, dev.calibration,
                              schedule=True, dd="xy4")
        assert (decoupled.circuit.count_ops().get("y", 0)
                > plain.circuit.count_ops().get("y", 0))

    def test_dd_without_schedule_rejected(self):
        dev = linear_device(2, seed=1)
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.measure(0, 0)
        with pytest.raises(ValueError, match="schedule=True"):
            transpile(qc, dev.coupling, dev.calibration, dd="xx")

    def test_bad_strategy_name_surfaces(self):
        dev = linear_device(2, seed=1)
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.delay(0, 10_000.0)
        qc.measure(0, 0)
        with pytest.raises(ValueError, match="unknown DD strategy"):
            transpile(qc, dev.coupling, dev.calibration, schedule=True,
                      dd="udd")

"""Unit tests for QuCP and the baseline allocators."""

import pytest

from repro.circuits import ghz_circuit
from repro.core import (
    cna_allocate,
    multiqc_allocate,
    oracle_characterization,
    qucloud_allocate,
    qucp_allocate,
    qumc_allocate,
)
from repro.workloads import workload


def _three(name="adder"):
    return [workload(name).circuit() for _ in range(3)]


class TestQucpAllocate:
    def test_partitions_disjoint(self, toronto):
        alloc = qucp_allocate(_three(), toronto)
        seen = set()
        for part in alloc.partitions:
            assert not seen & set(part)
            seen.update(part)

    def test_partitions_connected_and_sized(self, toronto):
        circuits = [ghz_circuit(n).measure_all() for n in (3, 4, 5)]
        alloc = qucp_allocate(circuits, toronto)
        for i, part in enumerate(alloc.partitions):
            assert len(part) == circuits[i].num_qubits
            assert toronto.coupling.is_connected_subset(part)

    def test_larger_programs_allocated_first(self, toronto):
        circuits = [ghz_circuit(3).measure_all(),
                    ghz_circuit(5).measure_all()]
        alloc = qucp_allocate(circuits, toronto)
        # The 5q program (index 1) must have been allocated first, i.e.
        # it appears first in the internal allocation order.
        assert alloc.allocations[0].index == 1

    def test_throughput(self, toronto):
        alloc = qucp_allocate(_three(), toronto)
        assert alloc.throughput() == pytest.approx(12 / 27)

    def test_device_capacity_exceeded(self, line5):
        with pytest.raises(RuntimeError):
            qucp_allocate(
                [ghz_circuit(3).measure_all() for _ in range(3)], line5)

    def test_sigma_zero_vs_large_can_differ(self, toronto):
        circuits = _three("alu-v0_27")
        blind = qucp_allocate(circuits, toronto, sigma=1.0)
        aware = qucp_allocate(circuits, toronto, sigma=8.0)
        # With sigma=1 QuCP degenerates to crosstalk-blind allocation;
        # EFS values must be ordered accordingly for the later programs.
        assert blind.method != aware.method

    def test_allocation_lookup(self, toronto):
        alloc = qucp_allocate(_three(), toronto)
        for idx in range(3):
            assert alloc.allocation_for(idx).index == idx
        with pytest.raises(KeyError):
            alloc.allocation_for(99)


class TestSigmaTuning:
    def test_large_sigma_matches_qumc_partitions(self, toronto):
        """The paper's sigma-tuning claim: sigma >= 4 reproduces QuMC."""
        circuits = _three("4mod5-v1_22")
        ratio_map = oracle_characterization(toronto)
        qumc = qumc_allocate(circuits, toronto, ratio_map=ratio_map)
        qucp = qucp_allocate(circuits, toronto, sigma=4.0)
        assert set(map(tuple, qucp.partitions)) == set(
            map(tuple, qumc.partitions))


class TestBaselines:
    def test_qumc_requires_characterization(self, toronto):
        with pytest.raises(ValueError):
            qumc_allocate(_three(), toronto)

    @pytest.mark.parametrize("allocator", [
        multiqc_allocate, qucloud_allocate,
    ])
    def test_baseline_partitions_valid(self, toronto, allocator):
        alloc = allocator(_three(), toronto)
        seen = set()
        for part in alloc.partitions:
            assert len(part) == 4
            assert toronto.coupling.is_connected_subset(part)
            assert not seen & set(part)
            seen.update(part)

    def test_cna_footprints_disjoint_and_runnable(self, toronto):
        """CNA maps onto the whole free chip; its footprints (which may
        exceed the program size when routing borrows qubits) must be
        disjoint and its precompiled circuits must fit them."""
        from repro.core import cna_compile

        circuits = _three()
        cna = cna_compile(circuits, toronto)
        seen = set()
        for alloc in cna.allocation.allocations:
            part = alloc.partition
            assert len(part) >= 4
            assert not seen & set(part)
            seen.update(part)
            transpiled = cna.transpiled[alloc.index]
            assert transpiled.circuit.num_qubits == len(part)

    def test_cna_processes_in_submission_order(self, toronto):
        """CNA has no largest-first sorting: allocations keep input order."""
        from repro.core import cna_compile

        circuits = [ghz_circuit(3).measure_all(),
                    ghz_circuit(5).measure_all()]
        cna = cna_compile(circuits, toronto)
        assert [a.index for a in cna.allocation.allocations] == [0, 1]

"""Unit tests for the extended circuit library (BV, DJ, QV)."""

import numpy as np
import pytest

from repro.circuits import (
    bernstein_vazirani_circuit,
    deutsch_jozsa_circuit,
    quantum_volume_circuit,
)
from repro.sim import ideal_probabilities, simulate_statevector


def _measured_data_qubits(qc, n):
    qc = qc.copy()
    qc.num_clbits = n
    for q in range(n):
        qc.measure(q, q)
    return qc


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", ["0", "1", "101", "1111", "0010"])
    def test_recovers_secret_deterministically(self, secret):
        qc = _measured_data_qubits(
            bernstein_vazirani_circuit(secret), len(secret))
        probs = ideal_probabilities(qc)
        assert probs[secret] == pytest.approx(1.0)

    def test_bad_secret_rejected(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit("")
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit("10a")

    def test_one_query_structure(self):
        qc = bernstein_vazirani_circuit("110")
        assert qc.num_cx() == 2  # one CX per set bit


class TestDeutschJozsa:
    def test_balanced_never_all_zeros(self):
        qc = _measured_data_qubits(deutsch_jozsa_circuit(3, True), 3)
        probs = ideal_probabilities(qc)
        assert probs.get("000", 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_constant_always_all_zeros(self):
        qc = _measured_data_qubits(deutsch_jozsa_circuit(3, False), 3)
        probs = ideal_probabilities(qc)
        assert probs.get("000", 0.0) == pytest.approx(1.0)

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            deutsch_jozsa_circuit(0)


class TestQuantumVolume:
    def test_square_by_default(self):
        qc = quantum_volume_circuit(4, seed=0)
        assert qc.count_ops()["cx"] == 2 * 4  # 2 pairs per layer x 4

    def test_seeded_reproducible(self):
        assert quantum_volume_circuit(3, seed=7) == \
            quantum_volume_circuit(3, seed=7)

    def test_state_normalized(self):
        sv = simulate_statevector(quantum_volume_circuit(4, seed=3))
        assert np.sum(np.abs(sv) ** 2) == pytest.approx(1.0)

    def test_too_few_qubits_rejected(self):
        with pytest.raises(ValueError):
            quantum_volume_circuit(1)

    def test_heavy_output_probability_above_half(self):
        """QV model circuits have heavy-output probability ~0.85
        ideally; check it exceeds the 2/3 QV threshold."""
        rng_heavy = []
        for seed in range(5):
            qc = quantum_volume_circuit(4, seed=seed)
            probs = np.abs(simulate_statevector(qc)) ** 2
            median = np.median(probs)
            heavy = probs[probs > median].sum()
            rng_heavy.append(heavy)
        assert np.mean(rng_heavy) > 2 / 3

"""Unit tests for the parallel-job executor (crosstalk + ALAP/ASAP)."""

import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.sim.executor import (
    Program,
    program_duration,
    run_parallel,
    run_single,
    spawn_seeds,
    timed_intervals,
)


def _fidelity(result, good=("000", "111")):
    return sum(result.probabilities.get(k, 0.0) for k in good)


class TestProgram:
    def test_partition_size_check(self):
        with pytest.raises(ValueError):
            Program(ghz_circuit(3), (0, 1))

    def test_duplicate_partition_rejected(self):
        with pytest.raises(ValueError):
            Program(ghz_circuit(2), (1, 1))

    def test_physical_edge_normalized(self):
        prog = Program(ghz_circuit(2), (5, 2))
        assert prog.physical_edge(0, 1) == (2, 5)


class TestTimedIntervals:
    def test_asap_serial_chain(self):
        qc = QuantumCircuit(1)
        qc.x(0).x(0)
        iv = timed_intervals(qc, {"x": 35.0}, mode="asap")
        assert iv == [(0.0, 35.0), (35.0, 70.0)]

    def test_parallel_gates_overlap(self):
        qc = QuantumCircuit(2)
        qc.x(0).x(1)
        iv = timed_intervals(qc, {"x": 35.0}, mode="asap")
        assert iv[0] == iv[1] == (0.0, 35.0)

    def test_alap_counts_from_end(self):
        qc = QuantumCircuit(2)
        qc.x(0).x(0).x(1)
        iv = timed_intervals(qc, {"x": 10.0}, mode="alap")
        # The lone x on qubit 1 is scheduled against the end: (0, 10).
        assert iv[2] == (0.0, 10.0)

    def test_delay_uses_param_duration(self):
        qc = QuantumCircuit(1)
        qc.delay(0, 123.0)
        iv = timed_intervals(qc, {}, mode="asap")
        assert iv == [(0.0, 123.0)]

    def test_program_duration(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        dur = program_duration(qc, {"h": 35.0, "cx": 300.0})
        assert dur == pytest.approx(335.0)


class TestRunParallel:
    def test_overlapping_partitions_rejected(self, toronto):
        qc = ghz_circuit(2).measure_all()
        with pytest.raises(ValueError):
            run_parallel(
                [Program(qc, (0, 1)), Program(qc.copy(), (1, 2))],
                toronto)

    def test_gate_on_missing_link_rejected(self, toronto):
        qc = ghz_circuit(2).measure_all()
        # (0, 2) is not a Toronto link.
        with pytest.raises(ValueError):
            run_parallel([Program(qc, (0, 2))], toronto)

    def test_ideal_mode_no_noise(self, toronto):
        qc = ghz_circuit(3).measure_all()
        res = run_parallel([Program(qc, (0, 1, 2))], toronto,
                           noisy=False, shots=0)[0]
        assert _fidelity(res) == pytest.approx(1.0)

    def test_noisy_single_program(self, toronto):
        qc = ghz_circuit(3).measure_all()
        res = run_single(qc, (0, 1, 2), toronto, shots=0)
        assert 0.5 < _fidelity(res) < 1.0

    def test_crosstalk_degrades_neighbours(self, toronto):
        """A strongly-interfering aggressor lowers the victim's fidelity."""
        # Find a strong ground-truth pair on the device.
        strong = None
        for e1, e2 in toronto.coupling.all_one_hop_edge_pairs():
            if toronto.crosstalk.factor(e1, e2) >= 2.5:
                strong = (e1, e2)
                break
        assert strong is not None, "seeded device should have strong pairs"
        (a1, a2), (b1, b2) = strong
        deep = QuantumCircuit(2, 2)
        deep.h(0)
        for _ in range(6):
            deep.cx(0, 1)
        deep.measure(0, 0)
        deep.measure(1, 1)
        solo = run_single(deep, (a1, a2), toronto, shots=0)
        together = run_parallel(
            [Program(deep, (a1, a2)), Program(deep.copy(), (b1, b2))],
            toronto, shots=0)[0]
        good = ("00", "11")
        assert _fidelity(together, good) < _fidelity(solo, good)

    def test_distant_programs_unaffected(self, manhattan):
        qc = ghz_circuit(2).measure_all()
        solo = run_single(qc, (0, 1), manhattan, shots=0)
        far = run_parallel(
            [Program(qc, (0, 1)), Program(qc.copy(), (63, 64))],
            manhattan, shots=0)[0]
        assert _fidelity(far, ("00", "11")) == pytest.approx(
            _fidelity(solo, ("00", "11")), abs=1e-9)

    def test_alap_beats_asap_for_short_program(self, toronto):
        deep = ghz_circuit(3)
        for _ in range(10):
            deep.cx(0, 1).cx(1, 2)
        deep.measure_all()
        short = ghz_circuit(3).measure_all()
        progs = lambda: [Program(deep.copy(), (0, 1, 2)),
                         Program(short.copy(), (3, 5, 8))]
        alap = run_parallel(progs(), toronto, shots=0,
                            scheduling="alap")[1]
        asap = run_parallel(progs(), toronto, shots=0,
                            scheduling="asap")[1]
        assert _fidelity(alap) > _fidelity(asap)

    def test_programs_sample_independently(self, manhattan):
        """Regression: one base seed must not correlate the multinomial
        draws of co-scheduled programs — each gets a spawned child
        stream."""
        qc = QuantumCircuit(2, 2)
        qc.ry(0.7, 0).ry(1.9, 1).cx(0, 1)
        qc.measure(0, 0).measure(1, 1)
        res = run_parallel(
            [Program(qc, (0, 1)), Program(qc.copy(), (63, 64))],
            manhattan, shots=2000, seed=11, noisy=False)
        assert sum(res[0].counts.values()) == 2000
        assert res[0].counts != res[1].counts

    def test_seeded_parallel_run_reproducible(self, manhattan):
        qc = QuantumCircuit(2, 2)
        qc.ry(0.7, 0).ry(1.9, 1).cx(0, 1)
        qc.measure(0, 0).measure(1, 1)
        progs = lambda: [Program(qc.copy(), (0, 1)),
                         Program(qc.copy(), (63, 64))]
        a = run_parallel(progs(), manhattan, shots=500, seed=3, noisy=False)
        b = run_parallel(progs(), manhattan, shots=500, seed=3, noisy=False)
        assert [r.counts for r in a] == [r.counts for r in b]

    def test_spawn_seeds(self):
        assert spawn_seeds(None, 3) == [None, None, None]
        children = spawn_seeds(42, 3)
        assert len(children) == 3
        states = {tuple(c.generate_state(4)) for c in children}
        assert len(states) == 3  # pairwise-distinct streams

    def test_spawn_seeds_does_not_mutate_caller_sequence(self):
        import numpy as np

        ss = np.random.SeedSequence(3)
        a = [tuple(c.generate_state(4)) for c in spawn_seeds(ss, 2)]
        b = [tuple(c.generate_state(4)) for c in spawn_seeds(ss, 2)]
        assert a == b  # same object -> same streams on every call
        assert ss.n_children_spawned == 0
        # ...and the caller's own spawns don't collide with ours.
        own = {tuple(c.generate_state(4)) for c in ss.spawn(2)}
        assert own.isdisjoint(a)

    def test_include_crosstalk_flag(self, toronto):
        strong = None
        for e1, e2 in toronto.coupling.all_one_hop_edge_pairs():
            if toronto.crosstalk.factor(e1, e2) >= 2.5:
                strong = (e1, e2)
                break
        (a1, a2), (b1, b2) = strong
        deep = QuantumCircuit(2, 2)
        deep.h(0)
        for _ in range(6):
            deep.cx(0, 1)
        deep.measure(0, 0)
        deep.measure(1, 1)
        progs = lambda: [Program(deep.copy(), (a1, a2)),
                         Program(deep.copy(), (b1, b2))]
        with_ct = run_parallel(progs(), toronto, shots=0,
                               include_crosstalk=True)[0]
        without = run_parallel(progs(), toronto, shots=0,
                               include_crosstalk=False)[0]
        assert _fidelity(without, ("00", "11")) > _fidelity(
            with_ct, ("00", "11"))

"""Failure-injection tests: the library must fail loudly and precisely
when inputs are broken, not silently mis-simulate — and, for
*infrastructure* faults (device outages, dying worker pools, killed
processes), degrade deterministically instead of failing at all."""

import json
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.circuits import CircuitError, QuantumCircuit, gate, ghz_circuit
from repro.core import (
    CloudScheduler,
    ExecutionService,
    FaultPlan,
    SubmittedProgram,
    inject_broken_process_pool,
    qucp_allocate,
)
from repro.hardware import (
    CouplingMap,
    DeviceFleet,
    generate_calibration,
    linear_device,
)
from repro.service import JobError, QuantumProvider
from repro.sim import KrausChannel, NoiseModel, run_circuit
from repro.sim.executor import Program, run_parallel
from repro.transpiler import Layout, transpile
from repro.workloads import synthesize_traffic, workload


class TestBrokenCircuits:
    def test_gate_arity_mismatch(self):
        qc = QuantumCircuit(3)
        with pytest.raises(CircuitError):
            qc.append(gate("cx"), [0, 1, 2])

    def test_measure_without_clbits(self):
        qc = QuantumCircuit(1, 0)
        with pytest.raises(CircuitError):
            qc.measure(0, 0)

    def test_compose_onto_missing_qubits(self):
        small = QuantumCircuit(2)
        big = ghz_circuit(3)
        with pytest.raises(CircuitError):
            small.compose(big)


class TestBrokenDevices:
    def test_disconnected_partition_unroutable(self, toronto):
        """A partition whose induced graph is disconnected cannot host a
        program needing entanglement across the cut."""
        from repro.transpiler import transpile_for_partition
        import networkx as nx

        qc = ghz_circuit(2).measure_all()
        # Qubits 0 and 26 are far apart: induced subgraph has no edge.
        with pytest.raises((nx.NetworkXNoPath, ValueError,
                            nx.NodeNotFound)):
            transpile_for_partition(qc, toronto, (0, 26))

    def test_calibration_missing_link(self):
        coupling = CouplingMap(3, [(0, 1), (1, 2)])
        cal = generate_calibration(coupling, seed=0)
        with pytest.raises(KeyError):
            cal.cx_error(0, 2)

    def test_program_larger_than_device(self, line5):
        with pytest.raises(RuntimeError):
            qucp_allocate([ghz_circuit(6).measure_all()], line5)


class TestBrokenNoise:
    def test_non_cptp_channel_rejected(self):
        bad = (np.eye(2, dtype=complex) * 1.1,)
        with pytest.raises(ValueError):
            KrausChannel(bad)

    def test_negative_error_rates_harmless(self):
        """Negative calibration entries must not produce negative
        probabilities — channel_for treats them as noiseless."""
        nm = NoiseModel(oneq_error={0: -0.5})
        qc = QuantumCircuit(1, 1)
        qc.x(0).measure(0, 0)
        res = run_circuit(qc, noise_model=nm, shots=0)
        assert res.probabilities["1"] == pytest.approx(1.0)

    def test_error_rate_above_one_clipped(self):
        nm = NoiseModel(twoq_error={(0, 1): 5.0})
        qc = ghz_circuit(2).measure_all()
        res = run_circuit(qc, noise_model=nm, shots=0)
        total = sum(res.probabilities.values())
        assert total == pytest.approx(1.0)
        assert all(v >= 0 for v in res.probabilities.values())


class TestBrokenParallelJobs:
    def test_program_with_gate_outside_partition(self, toronto):
        qc = QuantumCircuit(3, 3)
        qc.cx(0, 2)  # local (0, 2) -> physical (0, 2): not a link
        qc.measure_all()
        with pytest.raises(ValueError):
            run_parallel([Program(qc, (0, 1, 2))], toronto)

    def test_zero_shot_run_still_reports_probabilities(self, toronto):
        qc = workload("adder").circuit()
        alloc = qucp_allocate([qc], toronto)
        from repro.core import execute_allocation

        out = execute_allocation(alloc, shots=0)[0]
        assert out.result.counts == {}
        assert sum(out.result.probabilities.values()) == pytest.approx(
            1.0)

    def test_transpile_level_out_of_range(self, line5):
        with pytest.raises(ValueError):
            transpile(ghz_circuit(2), line5.coupling,
                      optimization_level=-1)

    def test_layout_for_wrong_device_size(self, line5):
        qc = ghz_circuit(2)
        bad_layout = Layout({0: 7, 1: 8})  # physical qubits don't exist
        with pytest.raises(Exception):
            transpile(qc, line5.coupling, line5.calibration,
                      initial_layout=bad_layout)


# ----------------------------------------------------------------------
# Infrastructure chaos: deterministic fault injection
# ----------------------------------------------------------------------

def _traffic(n, seed):
    """A small deterministic poisson arrival stream."""
    return synthesize_traffic(n, pattern="poisson",
                              mean_interarrival_ns=2e5, mix="uniform",
                              seed=seed)


class TestDeviceOutageChaos:
    """A committed FaultPlan replays the identical failure sequence."""

    def _fleet(self, toronto, melbourne):
        return DeviceFleet([toronto, melbourne])

    def test_midrun_outage_requeues_and_completes(self, toronto,
                                                  melbourne):
        plan = FaultPlan.device_outage("ibm_toronto", start_ns=5e5,
                                       duration_ns=2e6)
        sched = CloudScheduler(self._fleet(toronto, melbourne),
                               fidelity_threshold=1.0, fault_plan=plan)
        out = sched.schedule(_traffic(6, seed=5))
        assert out.outages == 1
        # The outage interrupted an in-flight batch: its programs
        # re-queued and still completed on the surviving device.
        assert out.requeued
        assert not out.rejected
        assert set(out.completion_ns) == set(range(6))
        for member in out.requeued:
            assert member in out.completion_ns

    def test_committed_plan_is_replay_identical(self, toronto,
                                                melbourne):
        plan = FaultPlan.device_outage("ibm_toronto", start_ns=5e5,
                                       duration_ns=2e6)
        runs = []
        for _ in range(2):
            sched = CloudScheduler(self._fleet(toronto, melbourne),
                                   fidelity_threshold=1.0,
                                   fault_plan=plan)
            runs.append(sched.schedule(_traffic(6, seed=5)).to_dict())
        assert runs[0] == runs[1]

    def test_recovered_device_rejoins(self, toronto):
        plan = FaultPlan.device_outage(0, start_ns=5e5, duration_ns=1e6)
        sched = CloudScheduler(DeviceFleet(toronto),
                               fidelity_threshold=1.0, fault_plan=plan)
        out = sched.schedule(_traffic(4, seed=3))
        # Sole device died and came back: everything still completes.
        assert out.outages == 1
        assert not out.rejected
        assert set(out.completion_ns) == set(range(4))

    def test_permanent_outage_rejects_with_reasons(self, toronto):
        plan = FaultPlan.device_outage("ibm_toronto", start_ns=1.0)
        sched = CloudScheduler(DeviceFleet(toronto),
                               fidelity_threshold=1.0, fault_plan=plan)
        out = sched.schedule(_traffic(4, seed=3))
        # The only device never comes back: nothing can complete, and
        # every program is rejected with a structured reason instead of
        # stranding the queue.
        assert sorted(out.rejected) == [0, 1, 2, 3]
        assert not out.completion_ns
        assert set(out.rejection_reasons) == {0, 1, 2, 3}
        for reason in out.rejection_reasons.values():
            assert "offline" in reason

    def test_overlapping_outages_require_both_recoveries(self, toronto):
        plan = (FaultPlan.device_outage(0, start_ns=4e5, duration_ns=4e6)
                .with_outage(0, start_ns=5e5, duration_ns=1e6))
        sched = CloudScheduler(DeviceFleet(toronto),
                               fidelity_threshold=1.0, fault_plan=plan)
        out = sched.schedule(_traffic(4, seed=3))
        assert out.outages == 2
        assert not out.rejected
        assert set(out.completion_ns) == set(range(4))

    def test_unknown_device_fails_at_construction(self, toronto):
        plan = FaultPlan.device_outage("ibm_nowhere", start_ns=0.0)
        with pytest.raises(ValueError, match="unknown device"):
            CloudScheduler(DeviceFleet(toronto), fault_plan=plan)

    def test_ambiguous_twin_name_fails_at_construction(self):
        twin_a = linear_device(5, seed=1)
        twin_b = linear_device(5, seed=2)
        assert twin_a.name == twin_b.name
        plan = FaultPlan.device_outage(twin_a.name, start_ns=0.0)
        with pytest.raises(ValueError, match="ambiguous"):
            CloudScheduler(DeviceFleet([twin_a, twin_b]),
                           fault_plan=plan)
        # By index the same twin is addressable.
        CloudScheduler(DeviceFleet([twin_a, twin_b]),
                       fault_plan=FaultPlan.device_outage(1, 0.0))

    def test_fault_plan_through_the_facade(self, toronto, melbourne):
        plan = FaultPlan.device_outage("ibm_toronto", start_ns=5e5,
                                       duration_ns=2e6)
        prov = QuantumProvider(devices=[toronto, melbourne])
        try:
            backend = prov.fleet_backend(
                ["ibm_toronto", "ibm_melbourne"],
                fidelity_threshold=1.0, fault_plan=plan)
            job = backend.run(_traffic(6, seed=5), shots=32, seed=2)
            result = job.result()
        finally:
            prov.shutdown()
        assert result.schedule.outages == 1
        # Every non-rejected program still produced counts.
        assert not result.metadata.rejected
        assert len(result.programs) == 6
        assert all(sum(p.counts.values()) == 32
                   for p in result.programs)


class TestStructuredRejections:
    def test_partial_rejection_reasons_in_metadata(self, line5):
        prov = QuantumProvider(devices=[line5])
        try:
            job = prov.backend(line5).run(
                [SubmittedProgram(ghz_circuit(2).measure_all()),
                 SubmittedProgram(ghz_circuit(8).measure_all())],
                shots=16, seed=1)
            result = job.result()
        finally:
            prov.shutdown()
        assert result.metadata.rejected == (1,)
        assert result.metadata.rejection_reasons == (
            (1, "circuit fits no device coupling map in the fleet"),)
        # The JSON payload carries them too.
        payload = result.to_dict()
        assert payload["metadata"]["rejection_reasons"] == {
            "1": "circuit fits no device coupling map in the fleet"}

    def test_total_rejection_is_a_typed_job_error(self, line5):
        prov = QuantumProvider(devices=[line5])
        try:
            job = prov.backend(line5).run(
                [ghz_circuit(8).measure_all()], shots=16, seed=1)
            with pytest.raises(JobError) as info:
                job.result()
        finally:
            prov.shutdown()
        assert info.value.job_id == job.job_id
        assert set(info.value.reasons) == {0}
        assert "program 0" in str(info.value)


class TestBrokenPoolChaos:
    """An injected BrokenProcessPool degrades to bit-identical inline
    execution (never a wrong answer, never a crash)."""

    CHAINS = [(0, 1, 2), (3, 5, 8), (12, 13, 14, 16), (22, 25, 26)]

    def _programs(self):
        programs = []
        for chain in self.CHAINS:
            qc = QuantumCircuit(len(chain), len(chain))
            qc.h(0)
            for i in range(len(chain) - 1):
                qc.cx(i, i + 1)
            qc.measure_all()
            programs.append(Program(qc, chain))
        return programs

    def _assert_identical(self, got, want):
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert g.counts == w.counts
            assert g.probabilities == w.probabilities

    def test_pool_broken_at_submit_falls_back_inline(self, toronto):
        programs = self._programs()
        want = ExecutionService(mode="serial").run_parallel(
            programs, toronto, shots=256, seed=9)
        svc = ExecutionService(max_workers=2, mode="process")
        executor = inject_broken_process_pool(svc, break_after=0,
                                              mode="submit")
        got = svc.run_parallel(programs, toronto, shots=256, seed=9)
        self._assert_identical(got, want)
        assert executor.broke
        assert svc.stats["fallbacks"] == len(programs)

    def test_worker_death_mid_chunk_falls_back_inline(self, toronto):
        programs = self._programs()
        want = ExecutionService(mode="serial").run_parallel(
            programs, toronto, shots=256, seed=9)
        svc = ExecutionService(max_workers=2, mode="process")
        executor = inject_broken_process_pool(svc, break_after=1,
                                              mode="result")
        got = svc.run_parallel(programs, toronto, shots=256, seed=9)
        self._assert_identical(got, want)
        assert executor.broke
        # The first chunk ran on the injected pool, the dead chunk's
        # programs fell back inline.
        assert 0 < svc.stats["fallbacks"] < len(programs)

    def test_next_batch_gets_a_fresh_pool(self, toronto):
        programs = self._programs()
        svc = ExecutionService(max_workers=2, mode="process")
        inject_broken_process_pool(svc, break_after=0, mode="submit")
        svc.run_parallel(programs, toronto, shots=64, seed=1)
        # The broken injected pool was dropped compare-and-swap style.
        assert svc._process_pool is None
        want = ExecutionService(mode="serial").run_parallel(
            programs, toronto, shots=64, seed=2)
        got = svc.run_parallel(programs, toronto, shots=64, seed=2)
        self._assert_identical(got, want)
        svc.shutdown()

    def test_broken_compile_pool_job_still_completes(self, line5):
        prov = QuantumProvider(devices=[line5], compile_mode="process")
        try:
            executor = inject_broken_process_pool(
                prov.compile_service, break_after=0, mode="submit")
            job = prov.backend(line5).run(
                [ghz_circuit(2).measure_all()] * 3, shots=16, seed=1)
            result = job.result()
            assert len(result.programs) == 3
            assert executor.broke
        finally:
            prov.shutdown()


class TestKillAndResume:
    """Kill a provider mid-flight; a fresh one on the same store must
    re-serve finished results bit-identically and drive interrupted
    jobs to DONE."""

    CHILD = textwrap.dedent("""
        import json, os, sys, threading

        from repro.circuits import ghz_circuit
        from repro.hardware import linear_device
        from repro.service import QuantumProvider

        store, out_path = sys.argv[1], sys.argv[2]
        dev = linear_device(5, seed=7)
        prov = QuantumProvider(devices=[dev], store_path=store)
        sim = prov.simulator(dev)

        job1 = sim.run([ghz_circuit(2).measure_all()] * 2, shots=64,
                       seed=3)
        payload = job1.result().to_dict()

        # Occupy the single job worker so the next submission stays
        # QUEUED, then die without any shutdown.
        blocker = prov._submit_job(
            sim, lambda job_id: threading.Event().wait(60))
        job2 = sim.run([ghz_circuit(3).measure_all()], shots=32, seed=4)

        with open(out_path, "w") as fh:
            json.dump({"job1": job1.job_id, "payload": payload,
                       "blocker": blocker.job_id,
                       "job2": job2.job_id}, fh)
        os._exit(1)
    """)

    def test_kill_and_resume(self, tmp_path):
        from repro.service import JobStatus, JobStore

        store = str(tmp_path / "jobs.sqlite")
        out_path = str(tmp_path / "child.json")
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.run(
            [sys.executable, "-c", self.CHILD, store, out_path],
            env=env, capture_output=True, text=True, timeout=300)
        assert proc.returncode == 1, proc.stderr
        with open(out_path) as fh:
            child = json.load(fh)

        # The store witnessed the crash: job2 still queued.
        with JobStore(store) as audit:
            assert audit.get(child["job1"]).status == "done"
            assert audit.get(child["job2"]).status == "queued"

        prov = QuantumProvider(devices=[linear_device(5, seed=7)],
                               store_path=store)
        try:
            # Finished work re-serves bit-identically.
            job1 = prov.job(child["job1"])
            assert job1.status() is JobStatus.DONE
            assert job1.result().to_dict() == child["payload"]

            # The interrupted replayable job is driven to DONE.
            job2 = prov.job(child["job2"])
            result = job2.result(timeout=240)
            assert job2.status() is JobStatus.DONE
            assert result.metadata.job_id == child["job2"]
            assert sum(result.counts(0).values()) == 32
            assert prov.store.get(child["job2"]).status == "done"

            # The non-replayable blocker surfaces as a structured error.
            blocker = prov.job(child["blocker"])
            assert blocker.status() is JobStatus.ERROR
            with pytest.raises(RuntimeError, match="replayable"):
                blocker.result()
        finally:
            prov.shutdown()

"""Failure-injection tests: the library must fail loudly and precisely
when inputs are broken, not silently mis-simulate."""

import numpy as np
import pytest

from repro.circuits import CircuitError, QuantumCircuit, gate, ghz_circuit
from repro.core import qucp_allocate
from repro.hardware import CouplingMap, generate_calibration, linear_device
from repro.sim import KrausChannel, NoiseModel, run_circuit
from repro.sim.executor import Program, run_parallel
from repro.transpiler import Layout, transpile
from repro.workloads import workload


class TestBrokenCircuits:
    def test_gate_arity_mismatch(self):
        qc = QuantumCircuit(3)
        with pytest.raises(CircuitError):
            qc.append(gate("cx"), [0, 1, 2])

    def test_measure_without_clbits(self):
        qc = QuantumCircuit(1, 0)
        with pytest.raises(CircuitError):
            qc.measure(0, 0)

    def test_compose_onto_missing_qubits(self):
        small = QuantumCircuit(2)
        big = ghz_circuit(3)
        with pytest.raises(CircuitError):
            small.compose(big)


class TestBrokenDevices:
    def test_disconnected_partition_unroutable(self, toronto):
        """A partition whose induced graph is disconnected cannot host a
        program needing entanglement across the cut."""
        from repro.transpiler import transpile_for_partition
        import networkx as nx

        qc = ghz_circuit(2).measure_all()
        # Qubits 0 and 26 are far apart: induced subgraph has no edge.
        with pytest.raises((nx.NetworkXNoPath, ValueError,
                            nx.NodeNotFound)):
            transpile_for_partition(qc, toronto, (0, 26))

    def test_calibration_missing_link(self):
        coupling = CouplingMap(3, [(0, 1), (1, 2)])
        cal = generate_calibration(coupling, seed=0)
        with pytest.raises(KeyError):
            cal.cx_error(0, 2)

    def test_program_larger_than_device(self, line5):
        with pytest.raises(RuntimeError):
            qucp_allocate([ghz_circuit(6).measure_all()], line5)


class TestBrokenNoise:
    def test_non_cptp_channel_rejected(self):
        bad = (np.eye(2, dtype=complex) * 1.1,)
        with pytest.raises(ValueError):
            KrausChannel(bad)

    def test_negative_error_rates_harmless(self):
        """Negative calibration entries must not produce negative
        probabilities — channel_for treats them as noiseless."""
        nm = NoiseModel(oneq_error={0: -0.5})
        qc = QuantumCircuit(1, 1)
        qc.x(0).measure(0, 0)
        res = run_circuit(qc, noise_model=nm, shots=0)
        assert res.probabilities["1"] == pytest.approx(1.0)

    def test_error_rate_above_one_clipped(self):
        nm = NoiseModel(twoq_error={(0, 1): 5.0})
        qc = ghz_circuit(2).measure_all()
        res = run_circuit(qc, noise_model=nm, shots=0)
        total = sum(res.probabilities.values())
        assert total == pytest.approx(1.0)
        assert all(v >= 0 for v in res.probabilities.values())


class TestBrokenParallelJobs:
    def test_program_with_gate_outside_partition(self, toronto):
        qc = QuantumCircuit(3, 3)
        qc.cx(0, 2)  # local (0, 2) -> physical (0, 2): not a link
        qc.measure_all()
        with pytest.raises(ValueError):
            run_parallel([Program(qc, (0, 1, 2))], toronto)

    def test_zero_shot_run_still_reports_probabilities(self, toronto):
        qc = workload("adder").circuit()
        alloc = qucp_allocate([qc], toronto)
        from repro.core import execute_allocation

        out = execute_allocation(alloc, shots=0)[0]
        assert out.result.counts == {}
        assert sum(out.result.probabilities.values()) == pytest.approx(
            1.0)

    def test_transpile_level_out_of_range(self, line5):
        with pytest.raises(ValueError):
            transpile(ghz_circuit(2), line5.coupling,
                      optimization_level=-1)

    def test_layout_for_wrong_device_size(self, line5):
        qc = ghz_circuit(2)
        bad_layout = Layout({0: 7, 1: 8})  # physical qubits don't exist
        with pytest.raises(Exception):
            transpile(qc, line5.coupling, line5.calibration,
                      initial_layout=bad_layout)

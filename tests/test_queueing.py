"""Unit tests for the FIFO queue / runtime-reduction model."""

import pytest

from repro.core import JobSpec, batched_speedup, simulate_fifo_queue


class TestJobSpec:
    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(0.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(1.0, arrival_ns=-1.0)


class TestFifoQueue:
    def test_single_job(self):
        report = simulate_fifo_queue([JobSpec(100.0)])
        assert report.makespan_ns == 100.0
        assert report.waiting_ns == (0.0,)

    def test_serial_accumulation(self):
        report = simulate_fifo_queue([JobSpec(100.0) for _ in range(4)])
        assert report.makespan_ns == 400.0
        assert report.completion_ns == (100.0, 200.0, 300.0, 400.0)
        assert report.waiting_ns == (0.0, 100.0, 200.0, 300.0)

    def test_arrival_order_respected(self):
        jobs = [JobSpec(50.0, arrival_ns=100.0), JobSpec(50.0)]
        report = simulate_fifo_queue(jobs)
        # The second-listed job arrived first and runs first.
        assert report.completion_ns[1] == 50.0
        assert report.completion_ns[0] == 150.0

    def test_idle_gap_between_arrivals(self):
        jobs = [JobSpec(10.0), JobSpec(10.0, arrival_ns=100.0)]
        report = simulate_fifo_queue(jobs)
        assert report.completion_ns == (10.0, 110.0)
        assert report.waiting_ns[1] == 0.0

    def test_mean_metrics(self):
        report = simulate_fifo_queue([JobSpec(100.0), JobSpec(100.0)])
        assert report.mean_turnaround_ns == 150.0
        assert report.mean_waiting_ns == 50.0

    def test_turnaround_subtracts_arrival(self):
        """Regression: turnaround is completion - arrival, not the raw
        completion time (the two only coincide when all arrivals are 0)."""
        jobs = [JobSpec(100.0, arrival_ns=1000.0),
                JobSpec(100.0, arrival_ns=1000.0)]
        report = simulate_fifo_queue(jobs)
        assert report.completion_ns == (1100.0, 1200.0)
        assert report.turnaround_ns == (100.0, 200.0)
        assert report.mean_turnaround_ns == 150.0

    def test_turnaround_with_idle_gap(self):
        jobs = [JobSpec(10.0), JobSpec(10.0, arrival_ns=100.0)]
        report = simulate_fifo_queue(jobs)
        # The late job waits zero: its turnaround is pure execution.
        assert report.turnaround_ns == (10.0, 10.0)
        assert report.mean_turnaround_ns == 10.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            simulate_fifo_queue([])


class TestBatchedSpeedup:
    def test_six_way_batching_is_six_times(self):
        """The paper's claim: total runtime reduction up to six times."""
        out = batched_speedup(6, 6, execution_ns=1e6)
        assert out["runtime_reduction"] == pytest.approx(6.0)

    def test_partial_batches(self):
        out = batched_speedup(7, 3, execution_ns=100.0)
        # ceil(7/3) = 3 batches.
        assert out["batched_makespan_ns"] == pytest.approx(300.0)
        assert out["runtime_reduction"] == pytest.approx(700.0 / 300.0)

    def test_overhead_reduces_speedup(self):
        free = batched_speedup(6, 6, 100.0, batch_overhead=0.0)
        taxed = batched_speedup(6, 6, 100.0, batch_overhead=0.5)
        assert taxed["runtime_reduction"] < free["runtime_reduction"]
        assert taxed["runtime_reduction"] == pytest.approx(4.0)

    def test_batch_size_one_is_serial(self):
        out = batched_speedup(5, 1, 100.0)
        assert out["runtime_reduction"] == pytest.approx(1.0)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            batched_speedup(0, 2, 100.0)
        with pytest.raises(ValueError):
            batched_speedup(2, 0, 100.0)

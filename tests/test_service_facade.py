"""Provider/Backend/Job facade: discovery, lifecycle, results, sessions.

The equivalence of facade jobs with the engine layer is covered by
``test_service_equivalence.py``; this file exercises the object model
itself — device discovery and sharing, job lifecycle (status, cancel,
error surfacing), typed results and their JSON form, sweeps, sessions,
and the satellite serialization/error-message contracts.
"""

import json
import math
import threading
from concurrent.futures import CancelledError

import pytest

import repro
from repro.circuits import ghz_circuit
from repro.core import (
    CloudScheduler,
    ScheduleOutcome,
    SubmittedProgram,
    UnknownAllocatorError,
    execute_allocation,
    get_allocator,
    qucp_allocate,
    resolve_allocator,
    run_batch,
)
from repro.core.executor import BatchJob
from repro.hardware import ibm_toronto, linear_device
from repro.service import (
    BackendConfiguration,
    JobStatus,
    QuantumProvider,
    Session,
)
from repro.workloads import workload


def small_programs():
    return [workload("adder").circuit(), ghz_circuit(3).measure_all()]


@pytest.fixture()
def provider():
    prov = QuantumProvider()
    yield prov
    prov.shutdown()


# ----------------------------------------------------------------------
# provider: discovery + shared instances
# ----------------------------------------------------------------------

class TestProvider:
    def test_builtin_devices_discoverable(self, provider):
        assert provider.available_devices() == [
            "ibm_manhattan", "ibm_melbourne", "ibm_toronto"]

    def test_device_instances_are_shared(self, provider):
        assert provider.device("ibm_toronto") is provider.device(
            "ibm_toronto")

    def test_unknown_device_lists_available(self, provider):
        from repro.service import UnknownDeviceError
        with pytest.raises(UnknownDeviceError,
                           match="did you mean 'ibm_toronto'") as excinfo:
            provider.device("ibm_tornto")
        # Plain message (KeyError.__str__ would repr-quote it).
        assert str(excinfo.value).startswith("unknown device")
        assert "ibm_melbourne" in str(excinfo.value)

    def test_add_device_and_backend_on_it(self, provider):
        dev = linear_device(6, seed=3)
        provider.add_device(dev)
        assert dev.name in provider.available_devices()
        backend = provider.backend(dev.name)
        assert backend.devices == (dev,)

    def test_add_device_name_collision_rejected(self, provider):
        provider.add_device(linear_device(5, seed=1), name="lin")
        with pytest.raises(ValueError, match="already registered"):
            provider.add_device(linear_device(5, seed=2), name="lin")

    def test_device_object_accepted_directly(self, provider):
        dev = linear_device(7, seed=9)
        backend = provider.simulator(dev)
        assert backend.device is dev
        # And it became discoverable under its own name.
        assert provider.device(dev.name) is dev

    def test_default_provider_is_shared_and_options_fork(self):
        assert repro.provider() is repro.provider()
        fresh = repro.provider(job_workers=1)
        assert fresh is not repro.provider()
        fresh.shutdown()

    def test_concurrent_first_lookup_yields_one_instance(self):
        import concurrent.futures
        prov = QuantumProvider()
        try:
            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                seen = set(pool.map(
                    lambda _: id(prov.device("ibm_melbourne")),
                    range(32)))
            assert len(seen) == 1
        finally:
            prov.shutdown()

    def test_job_history_evicts_finished_only(self):
        prov = QuantumProvider(job_history=2)
        try:
            backend = prov.simulator("ibm_toronto")
            jobs = [backend.run(small_programs()[0], shots=0)
                    for _ in range(4)]
            for job in jobs:
                job.wait()
            # One more submission triggers eviction past the bound.
            last = backend.run(small_programs()[0], shots=0)
            last.result()
            retained = {j.job_id for j in prov.jobs()}
            assert len(retained) <= 3  # bound + the in-flight one
            assert jobs[0].job_id not in retained
            with pytest.raises(KeyError):
                prov.job(jobs[0].job_id)
            # Explicit retirement empties the registry.
            assert prov.retire_finished() == len(retained)
            assert prov.jobs() == []
        finally:
            prov.shutdown()

    def test_submit_after_shutdown_refused(self):
        prov = QuantumProvider()
        backend = prov.simulator("ibm_toronto")
        prov.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            backend.run(small_programs(), shots=0)


# ----------------------------------------------------------------------
# jobs: lifecycle
# ----------------------------------------------------------------------

class TestJobLifecycle:
    def test_job_completes_with_stable_id(self, provider):
        backend = provider.simulator("ibm_toronto")
        job = backend.run(small_programs(), shots=128, seed=1)
        result = job.result()
        assert job.status() is JobStatus.DONE
        assert job.done()
        assert job.exception() is None
        assert result.metadata.job_id == job.job_id
        assert provider.job(job.job_id) is job
        assert job in provider.jobs()

    def test_unknown_job_id(self, provider):
        with pytest.raises(KeyError):
            provider.job("job-999999")

    def test_error_surfaces_through_status_and_result(self, provider):
        backend = provider.simulator("ibm_toronto")
        # No measurements -> execute_allocation raises.
        job = backend.run(ghz_circuit(3), shots=64)
        assert job.wait() is JobStatus.ERROR
        assert isinstance(job.exception(), ValueError)
        with pytest.raises(ValueError, match="no measurements"):
            job.result()

    def test_cancel_queued_job(self, provider):
        backend = provider.simulator("ibm_toronto")
        release = threading.Event()

        def stalling_transpiler(circuit, device, allocation):
            release.wait(10)
            from repro.transpiler import transpile_for_partition
            return transpile_for_partition(circuit, device,
                                           allocation.partition)

        blocker = backend.run(small_programs()[0], shots=0,
                              transpiler_fn=stalling_transpiler)
        queued = backend.run(small_programs()[1], shots=0)
        assert queued.status() is JobStatus.QUEUED
        assert queued.cancel()
        release.set()
        assert queued.wait() is JobStatus.CANCELLED
        with pytest.raises(CancelledError):
            queued.result()
        assert blocker.wait() is JobStatus.DONE

    def test_cancel_finished_job_fails(self, provider):
        backend = provider.simulator("ibm_toronto")
        job = backend.run(small_programs()[0], shots=0)
        job.result()
        assert not job.cancel()


# ----------------------------------------------------------------------
# backends: configuration + results
# ----------------------------------------------------------------------

class TestBackends:
    def test_configuration_defaults_match_engine(self, provider):
        cfg = provider.backend("ibm_toronto").configuration
        engine = CloudScheduler(ibm_toronto())
        assert cfg.fidelity_threshold == engine.fidelity_threshold
        assert cfg.batch_window_ns == engine.batch_window_ns
        assert cfg.job_overhead_ns == engine.job_overhead_ns
        assert cfg.max_batch_size == engine.max_batch_size

    def test_configuration_replace_ignores_none(self):
        cfg = BackendConfiguration(shots=1024)
        assert cfg.replace(shots=None) is cfg
        assert cfg.replace(shots=64).shots == 64

    def test_simulator_accepts_prebuilt_allocation(self, provider):
        device = provider.device("ibm_toronto")
        allocation = qucp_allocate(small_programs(), device)
        result = provider.simulator("ibm_toronto").run(
            allocation, shots=128, seed=5).result()
        assert [p.partition for p in result.programs] == [
            tuple(part) for part in allocation.partitions]
        assert result.metadata.method == allocation.method
        assert result.metadata.throughput == pytest.approx(
            allocation.throughput())

    def test_foreign_allocation_rejected(self, provider):
        other = qucp_allocate(small_programs(),
                              provider.device("ibm_manhattan"))
        with pytest.raises(ValueError, match="different instance"):
            provider.simulator("ibm_toronto").run(other, shots=0)

    def test_allocator_with_prebuilt_allocation_rejected(self, provider):
        allocation = qucp_allocate(small_programs(),
                                   provider.device("ibm_toronto"))
        with pytest.raises(ValueError, match="pre-built"):
            provider.simulator("ibm_toronto").run(
                allocation, shots=0, allocator="qumc")

    def test_allocator_override_per_run(self, provider):
        backend = provider.simulator("ibm_toronto")
        result = backend.run(small_programs(), shots=0,
                             allocator="qucloud").result()
        assert result.metadata.method == get_allocator(
            "qucloud").method_label()

    def test_shared_cache_across_backends(self, provider):
        programs = small_programs()
        provider.simulator("ibm_toronto").run(programs,
                                              shots=0).result()
        repeat = provider.simulator("ibm_toronto").run(
            programs, shots=0).result()
        assert repeat.metadata.transpile_misses == 0
        assert repeat.metadata.transpile_hits >= len(programs)

    def test_result_accessors(self, provider):
        result = provider.simulator("ibm_toronto").run(
            small_programs(), shots=256, seed=2).result()
        assert sum(result.counts(0).values()) == 256
        assert result.probabilities(1)
        assert 0.0 <= result.mean_pst() <= 1.0
        assert 0.0 <= result.mean_jsd() <= 1.0
        with pytest.raises(KeyError):
            result.program(99)

    def test_run_sweep_matches_run_batch(self, provider):
        device = provider.device("ibm_toronto")
        allocation = qucp_allocate(small_programs(), device)
        jobs = [BatchJob(allocation, shots=128) for _ in range(3)]
        reference = run_batch(jobs, seed=11)
        sweep = provider.simulator("ibm_toronto").run_sweep(
            [BatchJob(allocation, shots=128) for _ in range(3)], seed=11)
        assert len(sweep) == 3
        for ref_outs, res in zip(reference, sweep.results()):
            for ref, prog in zip(
                    sorted(ref_outs, key=lambda o: o.allocation.index),
                    res.programs):
                assert ref.result.counts == prog.counts

    def test_fleet_backend_policy_validated(self, provider):
        with pytest.raises(ValueError, match="placement policy"):
            provider.fleet_backend(["ibm_toronto", "ibm_melbourne"],
                                   policy="fastest")

    def test_cloud_backend_fails_fast_on_bad_allocator(self, provider):
        backend = provider.backend("ibm_toronto")
        # Submit-time errors, not a Job that dies at result() time.
        with pytest.raises(UnknownAllocatorError, match="did you mean"):
            backend.run(small_programs(), allocator="qcup")
        with pytest.raises(ValueError, match="incrementally"):
            backend.run(small_programs(), allocator="cna")

    def test_result_to_dict_can_include_raw_outcomes(self, provider):
        result = provider.simulator("ibm_toronto").run(
            small_programs(), shots=32, seed=1).result()
        payload = result.to_dict(include_outcomes=True)
        assert json.loads(json.dumps(payload)) == payload
        assert payload["outcomes"][0][0]["counts"]
        assert "outcomes" not in result.to_dict()


# ----------------------------------------------------------------------
# sessions
# ----------------------------------------------------------------------

class TestSession:
    def test_session_tracks_jobs_and_is_reproducible(self, provider):
        programs = small_programs()

        def run_session():
            with provider.session("ibm_toronto", shots=128,
                                  seed=42) as sess:
                for prog in programs:
                    sess.run(prog)
                return [r.counts(0) for r in sess.results()]

        assert run_session() == run_session()

    def test_session_defaults_and_close(self, provider):
        sess = provider.session("ibm_toronto", shots=64)
        job = sess.run(small_programs()[0])
        assert sess.jobs.jobs == [job]
        assert job.result().metadata.shots == 64
        sess.close()
        with pytest.raises(RuntimeError, match="closed"):
            sess.run(small_programs()[0])

    def test_session_on_simulator_backend(self, provider):
        backend = provider.simulator("ibm_toronto")
        with Session(backend, shots=32, warm=False) as sess:
            results = [sess.run(c) for c in small_programs()]
            statuses = sess.jobs.wait()
        assert all(s is JobStatus.DONE for s in statuses)
        assert all(r.result().metadata.shots == 32 for r in results)

    def test_session_seeds_never_collide_with_caller_spawn(self,
                                                           provider):
        import numpy as np
        base = np.random.SeedSequence(7)
        sess = provider.session("ibm_toronto", seed=base, warm=False)
        children = [sess._next_seed() for _ in range(3)]
        # Caller-side derivations from the same base must all differ
        # from the session's private streams.
        from repro.sim.executor import spawn_seeds
        others = list(base.spawn(3)) + spawn_seeds(base, 3)
        keys = {tuple(c.spawn_key) for c in children}
        assert len(keys) == 3
        assert keys.isdisjoint(tuple(o.spawn_key) for o in others)

    def test_warm_builds_context_tables(self, provider):
        backend = provider.backend("ibm_melbourne")
        backend.warm()
        from repro.core import allocation_engine
        ctx = allocation_engine(provider.device("ibm_melbourne")).context
        assert ctx.stats["tables_built"] > 0


# ----------------------------------------------------------------------
# satellite: JSON-safe serialization
# ----------------------------------------------------------------------

class TestSerialization:
    def test_execution_outcome_to_dict_round_trips(self):
        device = ibm_toronto()
        outcomes = execute_allocation(
            qucp_allocate(small_programs(), device), shots=64, seed=1)
        payload = [o.to_dict() for o in outcomes]
        restored = json.loads(json.dumps(payload))
        assert restored == payload
        assert restored[0]["counts"]
        assert isinstance(restored[0]["partition"][0], int)

    def test_schedule_outcome_to_dict_round_trips(self):
        scheduler = CloudScheduler(ibm_toronto(), fidelity_threshold=0.5)
        outcome = scheduler.schedule(
            [SubmittedProgram(c) for c in small_programs()])
        payload = outcome.to_dict()
        restored = json.loads(json.dumps(payload))
        assert restored == payload
        assert restored["num_jobs"] == outcome.num_jobs
        assert restored["jobs"][0]["members"] == [0, 1]
        assert set(restored["completion_ns"]) == {"0", "1"}

    def test_schedule_outcome_nan_turnaround_serializes_null(self):
        outcome = ScheduleOutcome(
            num_jobs=0, makespan_ns=0.0, mean_turnaround_ns=math.nan,
            mean_throughput=0.0, rejected=[0])
        payload = outcome.to_dict()
        assert payload["mean_turnaround_ns"] is None
        assert json.loads(json.dumps(payload)) == payload

    def test_result_to_dict_shares_engine_format(self, provider):
        backend = provider.backend("ibm_toronto")
        result = backend.run(small_programs(), shots=64, seed=3).result()
        payload = result.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["schedule"]["num_jobs"] == result.schedule.num_jobs
        assert (payload["metadata"]["job_id"]
                == result.metadata.job_id)


# ----------------------------------------------------------------------
# satellite: unknown-allocator error message
# ----------------------------------------------------------------------

class TestUnknownAllocatorError:
    def test_lists_available_allocators(self):
        with pytest.raises(UnknownAllocatorError) as excinfo:
            get_allocator("nope")
        message = str(excinfo.value)
        for name in ("cna", "multiqc", "qucloud", "qucp", "qumc"):
            assert repr(name) in message

    def test_suggests_close_match(self):
        with pytest.raises(UnknownAllocatorError,
                           match="did you mean 'qucp'"):
            get_allocator("qcup")

    def test_resolve_allocator_path(self):
        with pytest.raises(UnknownAllocatorError, match="available"):
            resolve_allocator("quantum")

    def test_still_a_keyerror_with_plain_str(self):
        with pytest.raises(KeyError) as excinfo:
            get_allocator("bogus")
        # KeyError.__str__ normally repr-quotes; the subclass must not.
        assert str(excinfo.value).startswith("unknown allocator")
        assert excinfo.value.known == (
            "cna", "multiqc", "qucloud", "qucp", "qumc")

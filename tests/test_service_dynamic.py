"""Facade-path tests for dynamic circuits: mid-circuit measurement,
reset-and-reuse, and control flow through ``provider().get_backend()``.

Satellite contract: a mid-circuit measure + reset program submitted
through the *full* facade path (provider -> backend -> job -> result)
must land its mid-circuit clbit values in the right result positions.
"""

import pytest

import repro
from repro.circuits import QuantumCircuit
from repro.service import QuantumProvider
from repro.workloads import dynamic_circuit, dynamic_workload_names


@pytest.fixture()
def provider():
    prov = QuantumProvider()
    yield prov
    prov.shutdown()


def _reuse_circuit():
    """Coin-flip into clbit 0, then reset and deterministically set the
    qubit before measuring into clbit 1."""
    qc = QuantumCircuit(1, 2, name="reuse")
    qc.h(0)
    qc.measure(0, 0)
    qc.reset(0)
    qc.x(0)
    qc.measure(0, 1)
    return qc


class TestGetBackendAlias:
    def test_get_backend_matches_backend(self, provider):
        via_alias = provider.get_backend("ibm_toronto")
        via_backend = provider.backend("ibm_toronto")
        assert via_alias.devices == via_backend.devices

    def test_default_target(self, provider):
        assert provider.get_backend().devices[0].name == "ibm_toronto"


class TestMidCircuitThroughFacade:
    def test_reuse_clbits_land_in_right_positions(self, provider):
        job = provider.get_backend("ibm_toronto").run(
            _reuse_circuit(), shots=600, seed=5)
        result = job.result()
        probs = result.probabilities(0)
        # Key position 0 is clbit 0 (the coin), position 1 is clbit 1
        # (deterministically 1 after reset + X).  Readout error leaks a
        # little weight elsewhere, nothing more.
        p_c1_one = sum(p for key, p in probs.items() if key[1] == "1")
        assert p_c1_one > 0.9
        p_coin_one = sum(p for key, p in probs.items() if key[0] == "1")
        assert 0.3 < p_coin_one < 0.7

    def test_teleportation_through_facade(self, provider):
        job = provider.get_backend("ibm_toronto").run(
            dynamic_circuit("teleportation"), shots=400, seed=8)
        result = job.result()
        assert sum(result.counts(0).values()) == 400
        assert result.metadata.dynamic_programs == 1

    def test_mixed_static_and_dynamic_job(self, provider):
        static = QuantumCircuit(2, 2, name="bell")
        static.h(0)
        static.cx(0, 1)
        static.measure(0, 0)
        static.measure(1, 1)
        job = provider.get_backend("ibm_toronto").run(
            [static, _reuse_circuit(), dynamic_circuit("teleportation")],
            shots=300, seed=2)
        result = job.result()
        # Only unresolved control flow counts as dynamic; the reset
        # reuse circuit runs per-shot but carries no branches.
        assert result.metadata.dynamic_programs == 1
        for i in range(3):
            assert sum(result.counts(i).values()) == 300

    def test_same_seed_reproduces(self, provider):
        backend = provider.get_backend("ibm_toronto")
        a = backend.run(_reuse_circuit(), shots=200, seed=11).result()
        b = backend.run(_reuse_circuit(), shots=200, seed=11).result()
        assert a.counts(0) == b.counts(0)


class TestDynamicSuiteThroughFleet:
    def test_suite_executes_and_counts_dynamic(self, provider):
        from repro.core import SubmittedProgram

        backend = provider.fleet_backend(
            [provider.device("ibm_toronto"),
             provider.device("ibm_melbourne")],
            policy="least_loaded", allocator="qucp",
            fidelity_threshold=1.0)
        subs = [SubmittedProgram(circuit=dynamic_circuit(name),
                                 arrival_ns=float(i) * 1e5,
                                 user=f"user{i}")
                for i, name in enumerate(dynamic_workload_names())]
        result = backend.run(subs, shots=128, seed=6).result()
        # echo_loop statically resolves; the other three stay dynamic.
        assert result.metadata.dynamic_programs == 3
        assert result.metadata.rejected == ()
        for i in range(len(subs)):
            assert sum(result.counts(i).values()) == 128

"""Unit tests for PST, JSD, and EFS."""

import math

import pytest

from repro.core import (
    estimated_fidelity_score,
    hardware_throughput,
    jensen_shannon_divergence,
    kl_divergence,
    normalize_distribution,
    pst,
)


class TestPst:
    def test_all_successful(self):
        assert pst({"01": 100}, "01") == 1.0

    def test_partial(self):
        assert pst({"01": 75, "11": 25}, "01") == 0.75

    def test_missing_key_is_zero(self):
        assert pst({"00": 10}, "11") == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pst({}, "0")


class TestKl:
    def test_identical_zero(self):
        p = {"0": 0.5, "1": 0.5}
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_infinite_when_support_mismatch(self):
        assert kl_divergence({"0": 1.0}, {"1": 1.0}) == math.inf

    def test_known_value(self):
        p = {"0": 1.0}
        q = {"0": 0.5, "1": 0.5}
        assert kl_divergence(p, q) == pytest.approx(1.0)  # log2(2)


class TestJsd:
    def test_identical_distributions(self):
        p = {"00": 0.25, "01": 0.75}
        assert jensen_shannon_divergence(p, p) == pytest.approx(0.0)

    def test_disjoint_support_is_one(self):
        assert jensen_shannon_divergence(
            {"0": 1.0}, {"1": 1.0}) == pytest.approx(1.0)

    def test_symmetric(self):
        p = {"0": 0.9, "1": 0.1}
        q = {"0": 0.4, "1": 0.6}
        assert jensen_shannon_divergence(p, q) == pytest.approx(
            jensen_shannon_divergence(q, p))

    def test_always_finite_unlike_kl(self):
        p = {"0": 1.0}
        q = {"1": 1.0}
        assert kl_divergence(p, q) == math.inf
        assert jensen_shannon_divergence(p, q) <= 1.0

    def test_accepts_counts(self):
        a = {"0": 900, "1": 100}
        b = {"0": 0.9, "1": 0.1}
        assert jensen_shannon_divergence(a, b) == pytest.approx(0.0,
                                                                abs=1e-12)

    def test_normalize_rejects_empty(self):
        with pytest.raises(ValueError):
            normalize_distribution({})


class TestEfs:
    def test_formula_components(self, toronto):
        partition = (0, 1, 2)
        efs = estimated_fidelity_score(
            partition, toronto.coupling, toronto.calibration,
            num_twoq_gates=10, num_oneq_gates=20)
        cal = toronto.calibration
        edges = toronto.coupling.subgraph_edges(partition)
        avg2 = sum(cal.cx_error(*e) for e in edges) / len(edges)
        avg1 = sum(cal.oneq_error[q] for q in partition) / 3
        ro = sum(cal.readout_error_avg(q) for q in partition)
        assert efs == pytest.approx(avg2 * 10 + avg1 * 20 + ro)

    def test_sigma_inflates_crosstalk_pairs(self, toronto):
        partition = (0, 1, 2)
        base = estimated_fidelity_score(
            partition, toronto.coupling, toronto.calibration, 10, 0)
        boosted = estimated_fidelity_score(
            partition, toronto.coupling, toronto.calibration, 10, 0,
            crosstalk_pairs=[(0, 1)], sigma=4.0)
        assert boosted > base

    def test_sigma_one_is_neutral(self, toronto):
        partition = (0, 1, 2)
        a = estimated_fidelity_score(
            partition, toronto.coupling, toronto.calibration, 5, 5)
        b = estimated_fidelity_score(
            partition, toronto.coupling, toronto.calibration, 5, 5,
            crosstalk_pairs=[(0, 1)], sigma=1.0)
        assert a == pytest.approx(b)

    def test_edgeless_partition_with_twoq_gates_penalized(self, toronto):
        # Qubits 0 and 2 are not connected on Toronto.
        efs = estimated_fidelity_score(
            (0, 2), toronto.coupling, toronto.calibration, 5, 0)
        assert efs > 1.0


class TestThroughput:
    def test_simple_ratio(self):
        assert hardware_throughput(12, 27) == pytest.approx(12 / 27)

    def test_paper_fig1_values(self):
        # Fig. 1: one 4q circuit on the 15-qubit Melbourne = 26.7%.
        assert hardware_throughput(4, 15) == pytest.approx(0.267, abs=1e-3)
        assert hardware_throughput(8, 15) == pytest.approx(0.533, abs=1e-3)

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            hardware_throughput(1, 0)

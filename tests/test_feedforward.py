"""Unit tests for the per-shot feed-forward simulation engines."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.circuit import CircuitError
from repro.sim import (
    NoiseModel,
    dynamic_probabilities,
    ideal_probabilities,
    run_circuit,
    run_dynamic,
    simulate_density_matrix,
)
from repro.sim.feedforward import needs_feedforward
from repro.workloads import dynamic_circuit

THETA = 1.234


def _teleport(theta=THETA):
    qc = QuantumCircuit(3, 3)
    qc.ry(theta, 0)
    qc.h(1)
    qc.cx(1, 2)
    qc.cx(0, 1)
    qc.h(0)
    qc.measure(0, 0)
    qc.measure(1, 1)
    x_fix = QuantumCircuit(3, 3)
    x_fix.x(2)
    z_fix = QuantumCircuit(3, 3)
    z_fix.z(2)
    qc.if_test(([1], 1), x_fix)
    qc.if_test(([0], 1), z_fix)
    qc.measure(2, 2)
    return qc


def _p1_of_clbit(probs, measured, clbit):
    pos = measured.index(clbit)
    return sum(p for key, p in probs.items() if key[pos] == "1")


class TestDynamicProbabilities:
    def test_teleportation_is_exact(self):
        probs = dynamic_probabilities(_teleport())
        p1 = sum(p for key, p in probs.items() if key[2] == "1")
        assert p1 == pytest.approx(np.sin(THETA / 2) ** 2, abs=1e-9)

    def test_repeat_until_success_geometric_tail(self):
        probs = dynamic_probabilities(dynamic_circuit(
            "repeat_until_success"))
        # 1 initial try + 6 retries of a fair coin: failure is 2^-7.
        p1 = sum(p for key, p in probs.items() if key[1] == "1")
        assert p1 == pytest.approx(1.0 - 2.0 ** -7, abs=1e-9)

    def test_reset_branches_recombine(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.reset(0)
        qc.measure(0, 0)
        assert dynamic_probabilities(qc) == pytest.approx({"0": 1.0})

    def test_static_circuit_delegates_to_ideal(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure(0, 0)
        qc.measure(1, 1)
        assert dynamic_probabilities(qc) == pytest.approx(
            ideal_probabilities(qc))

    def test_while_loop_respects_iteration_cap(self):
        # A fair coin retried under a cap of 2: P(fail) = 2^-3.
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure(0, 0)
        retry = QuantumCircuit(1, 1)
        retry.reset(0)
        retry.h(0)
        retry.measure(0, 0)
        qc.while_loop(([0], 0), retry, max_iterations=2)
        probs = dynamic_probabilities(qc)
        assert probs["0"] == pytest.approx(2.0 ** -3, abs=1e-9)


class TestRunDynamic:
    def test_unresolvable_requires_shots(self):
        with pytest.raises(ValueError, match="shots"):
            run_dynamic(_teleport(), shots=0)

    def test_no_measurement_rejected(self):
        qc = QuantumCircuit(1, 1)
        body = QuantumCircuit(1, 1)
        body.x(0)
        # Unresolvable op via a prior measure... without one there is
        # nothing to feed conditions: build a genuinely conditionless
        # dynamic circuit instead.
        qc.h(0)
        qc.measure(0, 0)
        qc.if_test(([0], 1), body)
        res = run_dynamic(qc, shots=10, seed=0)
        assert sum(res.counts.values()) == 10

    def test_empirical_matches_exact(self):
        circ = _teleport()
        exact = dynamic_probabilities(circ)
        res = run_dynamic(circ, shots=4000, seed=3)
        tv = 0.5 * sum(
            abs(exact.get(k, 0.0) - res.probabilities.get(k, 0.0))
            for k in set(exact) | set(res.probabilities))
        assert tv < 0.06

    def test_noise_degrades_teleportation(self):
        nm = NoiseModel(
            oneq_error={q: 5e-3 for q in range(3)},
            twoq_error={(a, b): 0.03 for a in range(3)
                        for b in range(a + 1, 3)},
            readout_error={q: (0.03, 0.03) for q in range(3)},
        )
        ideal_p1 = np.sin(THETA / 2) ** 2
        res = run_dynamic(_teleport(), noise_model=nm, shots=3000,
                          seed=17, allow_unroll=False)
        p1 = _p1_of_clbit(res.probabilities, list(res.measured_clbits), 2)
        assert abs(p1 - ideal_p1) > 0.01  # noise moved it...
        assert abs(p1 - ideal_p1) < 0.35  # ...but not to garbage

    def test_counts_sum_to_shots(self):
        res = run_dynamic(dynamic_circuit("conditional_fixup"),
                          shots=321, seed=1)
        assert sum(res.counts.values()) == 321


class TestRouting:
    def test_simulate_density_matrix_rejects_control_flow(self):
        with pytest.raises(CircuitError, match="run_dynamic"):
            simulate_density_matrix(_teleport())

    def test_run_circuit_reroutes_dynamic(self):
        res = run_circuit(_teleport(), shots=500, seed=2)
        assert sum(res.counts.values()) == 500
        assert res.measured_clbits == (0, 1, 2)

    def test_ideal_probabilities_reroutes_midcircuit(self):
        qc = QuantumCircuit(1, 2)
        qc.h(0)
        qc.measure(0, 0)
        qc.reset(0)
        qc.x(0)
        qc.measure(0, 1)
        probs = ideal_probabilities(qc)
        # Clbit 1 always reads 1; clbit 0 is the coin.
        assert probs == pytest.approx({"01": 0.5, "11": 0.5})

    def test_needs_feedforward_predicate(self):
        static = QuantumCircuit(1, 1)
        static.h(0)
        static.measure(0, 0)
        assert not needs_feedforward(static)
        assert needs_feedforward(_teleport())

    def test_deferred_measurement_path_unchanged(self):
        """Plain end-measured circuits keep the static fast path: the
        distribution equals the density-matrix projection exactly."""
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure(0, 0)
        qc.measure(1, 1)
        res = run_circuit(qc)
        assert res.probabilities == pytest.approx(
            {"00": 0.5, "11": 0.5}, abs=1e-12)

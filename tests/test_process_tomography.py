"""Unit tests for single-qubit process tomography (PTM)."""

import numpy as np
import pytest

from repro.characterization import process_tomography_1q


class TestIdealChannels:
    def test_identity_ptm(self):
        res = process_tomography_1q("id")
        assert np.allclose(res.ptm, np.eye(4), atol=1e-9)
        assert res.average_gate_fidelity() == pytest.approx(1.0)

    def test_x_gate_ptm(self):
        res = process_tomography_1q("x")
        assert np.allclose(np.diag(res.ptm), [1, 1, -1, -1], atol=1e-9)

    def test_z_gate_ptm(self):
        res = process_tomography_1q("z")
        assert np.allclose(np.diag(res.ptm), [1, -1, -1, 1], atol=1e-9)

    def test_hadamard_swaps_x_and_z(self):
        res = process_tomography_1q("h")
        assert res.ptm[1, 3] == pytest.approx(1.0, abs=1e-9)  # Z -> X
        assert res.ptm[3, 1] == pytest.approx(1.0, abs=1e-9)  # X -> Z
        assert res.ptm[2, 2] == pytest.approx(-1.0, abs=1e-9)

    def test_rz_rotation_block(self):
        theta = 0.7
        res = process_tomography_1q("rz", params=(theta,))
        assert res.ptm[1, 1] == pytest.approx(np.cos(theta), abs=1e-9)
        assert res.ptm[2, 1] == pytest.approx(np.sin(theta), abs=1e-9)

    def test_ideal_channels_unital(self):
        for name in ("id", "x", "h", "s"):
            assert process_tomography_1q(name).is_unital()

    def test_first_row_trace_preserving(self):
        res = process_tomography_1q("h")
        assert np.allclose(res.ptm[0], [1, 0, 0, 0], atol=1e-9)


class TestNoisyChannels:
    def test_noisy_gate_contracts_bloch_sphere(self, toronto):
        res = process_tomography_1q("x", device=toronto, qubit=0)
        diag = np.abs(np.diag(res.ptm)[1:])
        assert np.all(diag < 1.0)
        assert np.all(diag > 0.97)  # small 1q errors

    def test_noisy_fidelity_below_one(self, toronto):
        res = process_tomography_1q("id", device=toronto, qubit=0)
        assert 0.99 < res.average_gate_fidelity() < 1.0

    def test_worse_qubit_lower_fidelity(self, toronto):
        errors = toronto.calibration.oneq_error
        best = min(errors, key=errors.get)
        worst = max(errors, key=errors.get)
        ideal_x = process_tomography_1q("x").ptm
        f_best = process_tomography_1q(
            "x", device=toronto,
            qubit=best).average_gate_fidelity(ideal_x)
        f_worst = process_tomography_1q(
            "x", device=toronto,
            qubit=worst).average_gate_fidelity(ideal_x)
        assert f_worst < f_best
        assert 0.98 < f_worst < f_best <= 1.0

"""Unit tests for QuantumCircuit."""

import math

import pytest

from repro.circuits import CircuitError, QuantumCircuit, gate


class TestConstruction:
    def test_empty_circuit(self):
        qc = QuantumCircuit(3)
        assert qc.num_qubits == 3
        assert qc.num_clbits == 0
        assert len(qc) == 0
        assert qc.depth() == 0

    def test_negative_counts_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(-1)

    def test_builder_methods_chain(self):
        qc = QuantumCircuit(2, 2)
        result = qc.h(0).cx(0, 1).measure(0, 0)
        assert result is qc
        assert [i.name for i in qc] == ["h", "cx", "measure"]

    def test_out_of_range_qubit_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            qc.h(2)

    def test_duplicate_qubits_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            qc.cx(1, 1)

    def test_measure_clbit_out_of_range(self):
        qc = QuantumCircuit(2, 1)
        with pytest.raises(CircuitError):
            qc.measure(0, 1)

    def test_measure_all_grows_clbits(self):
        qc = QuantumCircuit(3)
        qc.measure_all()
        assert qc.num_clbits == 3
        assert qc.count_ops()["measure"] == 3


class TestQueries:
    def test_size_excludes_directives(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0).barrier().cx(0, 1).measure_all()
        assert qc.size() == 2
        assert qc.size(include_directives=True) == 5

    def test_depth_linear_chain(self):
        qc = QuantumCircuit(1)
        for _ in range(5):
            qc.x(0)
        assert qc.depth() == 5

    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(4)
        qc.h(0).h(1).h(2).h(3)
        assert qc.depth() == 1

    def test_depth_counts_measure(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0).measure(0, 0)
        assert qc.depth() == 2

    def test_count_ops(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(1).cx(0, 1)
        assert qc.count_ops() == {"h": 2, "cx": 1}

    def test_num_cx_and_twoq(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1).cz(1, 2).h(0)
        assert qc.num_cx() == 1
        assert qc.num_twoq_gates() == 2

    def test_qubits_used(self):
        qc = QuantumCircuit(5)
        qc.h(1).cx(3, 1)
        assert qc.qubits_used() == (1, 3)


class TestTransforms:
    def test_copy_is_independent(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        other = qc.copy()
        other.x(1)
        assert len(qc) == 1
        assert len(other) == 2

    def test_inverse_reverses_and_inverts(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).s(1)
        inv = qc.inverse()
        assert [i.name for i in inv] == ["sdg", "cx", "h"]

    def test_inverse_rejects_measure(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(CircuitError):
            qc.inverse()

    def test_without_measurements(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0).measure_all()
        stripped = qc.without_measurements()
        assert stripped.count_ops() == {"h": 1}

    def test_compose_identity_mapping(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        c = a.compose(b)
        assert [i.name for i in c] == ["h", "cx"]

    def test_compose_with_qubit_mapping(self):
        a = QuantumCircuit(3)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        c = a.compose(b, qubits=[2, 0])
        assert c[0].qubits == (2, 0)

    def test_compose_size_mismatch_rejected(self):
        a = QuantumCircuit(2)
        b = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            a.compose(b, qubits=[0])

    def test_remapped(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        out = qc.remapped({0: 4, 1: 2}, num_qubits=5)
        assert out.num_qubits == 5
        assert out[0].qubits == (4, 2)

    def test_repeated(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        assert qc.repeated(3).size() == 3
        assert qc.repeated(0).size() == 0

    def test_equality(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.h(0)
        assert a == b
        b.x(1)
        assert a != b

    def test_delay_duration_param(self):
        qc = QuantumCircuit(1)
        qc.delay(0, 120.0)
        assert qc[0].name == "delay"
        assert qc[0].params == (120.0,)

    def test_summary_mentions_counts(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        text = qc.summary()
        assert "2 qubits" in text
        assert "cx:1" in text

"""Unit tests for the online multi-user scheduler."""

import pytest

from repro.core import OnlineScheduler, SubmittedProgram
from repro.workloads import workload


def _stream(names, spacing_ns=0.0):
    return [
        SubmittedProgram(workload(n).circuit(), arrival_ns=i * spacing_ns,
                         user=f"user{i}")
        for i, n in enumerate(names)
    ]


class TestOnlineScheduler:
    def test_zero_threshold_admits_only_solo_optimal(self, toronto):
        """At threshold 0 a non-head program joins a batch only when it
        still gets exactly its solo-best placement (zero degradation)."""
        subs = _stream(["adder", "fred", "lin"])
        scheduler = OnlineScheduler(toronto, fidelity_threshold=0.0)
        out = scheduler.schedule(subs)
        for batch in out.batches:
            for alloc in batch.allocations:
                solo = scheduler._best_placement(  # noqa: SLF001
                    alloc.circuit, [], [])
                assert alloc.efs <= solo[1] * (1 + 1e-9)

    def test_zero_threshold_serial_for_identical_copies(self, toronto):
        """Identical copies contend for the same best region, so
        threshold 0 degenerates to serial service (the Fig. 4 regime)."""
        subs = _stream(["adder", "adder", "adder"])
        out = OnlineScheduler(toronto,
                              fidelity_threshold=0.0).schedule(subs)
        assert out.num_jobs == 3

    def test_batching_reduces_jobs(self, toronto):
        subs = _stream(["adder", "fred", "lin", "4mod", "bell", "qec"])
        serial = OnlineScheduler(toronto,
                                 fidelity_threshold=0.0).schedule(subs)
        batched = OnlineScheduler(toronto,
                                  fidelity_threshold=1.0).schedule(subs)
        assert batched.num_jobs < serial.num_jobs
        assert batched.makespan_ns < serial.makespan_ns

    def test_batching_improves_turnaround(self, toronto):
        subs = _stream(["adder", "fred", "lin", "4mod", "bell", "qec"])
        serial = OnlineScheduler(toronto,
                                 fidelity_threshold=0.0).schedule(subs)
        batched = OnlineScheduler(toronto,
                                  fidelity_threshold=1.0).schedule(subs)
        assert batched.mean_turnaround_ns <= serial.mean_turnaround_ns

    def test_batched_throughput_higher(self, toronto):
        subs = _stream(["adder", "fred", "lin", "4mod"])
        serial = OnlineScheduler(toronto,
                                 fidelity_threshold=0.0).schedule(subs)
        batched = OnlineScheduler(toronto,
                                  fidelity_threshold=1.0).schedule(subs)
        assert batched.mean_throughput > serial.mean_throughput

    def test_every_program_completes_once(self, toronto):
        subs = _stream(["adder", "fred", "lin", "4mod", "bell"])
        out = OnlineScheduler(toronto,
                              fidelity_threshold=0.8).schedule(subs)
        scheduled = [
            alloc.index for batch in out.batches
            for alloc in batch.allocations
        ]
        assert sorted(scheduled) == list(range(len(subs)))

    def test_batch_partitions_disjoint(self, toronto):
        subs = _stream(["adder", "fred", "lin", "4mod", "bell", "qec"])
        out = OnlineScheduler(toronto,
                              fidelity_threshold=1.0).schedule(subs)
        for batch in out.batches:
            seen = set()
            for alloc in batch.allocations:
                assert not seen & set(alloc.partition)
                seen.update(alloc.partition)

    def test_late_arrivals_not_batched_early(self, toronto):
        # Second program arrives long after the first job must start.
        subs = _stream(["adder", "fred"], spacing_ns=1e9)
        out = OnlineScheduler(toronto,
                              fidelity_threshold=1.0).schedule(subs)
        assert out.num_jobs == 2

    def test_negative_threshold_rejected(self, toronto):
        with pytest.raises(ValueError):
            OnlineScheduler(toronto, fidelity_threshold=-0.5)

    def test_empty_submission_rejected(self, toronto):
        with pytest.raises(ValueError):
            OnlineScheduler(toronto).schedule([])

    def test_oversized_program_rejected_not_fatal(self, line5):
        """An oversized head no longer kills the service: it lands in
        the rejected list and the rest of the queue is served."""
        from repro.circuits import ghz_circuit
        from repro.workloads import workload

        subs = [SubmittedProgram(ghz_circuit(6).measure_all()),
                SubmittedProgram(workload("adder").circuit())]
        out = OnlineScheduler(line5).schedule(subs)
        assert out.rejected == [0]
        assert sorted(out.completion_ns) == [1]
        assert out.num_jobs == 1

    def test_all_programs_oversized(self, line5):
        from repro.circuits import ghz_circuit

        subs = [SubmittedProgram(ghz_circuit(6).measure_all())]
        out = OnlineScheduler(line5).schedule(subs)
        assert out.rejected == [0]
        assert out.num_jobs == 0
        assert out.makespan_ns == 0.0

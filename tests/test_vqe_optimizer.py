"""Unit tests for the VQE optimization drivers."""

import numpy as np
import pytest

from repro.vqe import (
    h2_hamiltonian,
    minimize_energy_ideal,
    minimize_energy_parallel,
    vqe_energy_ideal,
)


class TestIdealMinimizer:
    def test_reaches_tied_ansatz_optimum(self):
        result = minimize_energy_ideal()
        # Dense-scan reference for the tied ansatz.
        thetas = np.linspace(-np.pi, np.pi, 2001)
        reference = min(vqe_energy_ideal(t) for t in thetas)
        assert result.energy <= reference + 1e-4

    def test_close_to_exact_ground_energy(self):
        result = minimize_energy_ideal()
        exact = h2_hamiltonian().ground_energy()
        assert abs(result.energy - exact) / abs(exact) < 0.02

    def test_history_recorded(self):
        result = minimize_energy_ideal()
        assert len(result.history) > 10
        energies = [e for _, e in result.history]
        assert min(energies) == pytest.approx(result.energy, abs=1e-9)

    def test_no_hardware_jobs(self):
        result = minimize_energy_ideal()
        assert result.num_jobs == 0
        assert result.num_circuit_executions == 0


class TestParallelMinimizer:
    def test_converges_near_ideal(self, manhattan):
        result = minimize_energy_parallel(
            manhattan, rounds=3, points_per_round=8, shots=8192, seed=5)
        ideal = minimize_energy_ideal()
        assert abs(result.energy - ideal.energy) / abs(ideal.energy) < 0.12

    def test_one_job_per_round(self, manhattan):
        result = minimize_energy_parallel(
            manhattan, rounds=2, points_per_round=4, shots=1024, seed=1)
        assert result.num_jobs == 2
        # 2 groups x 4 points per round x 2 rounds.
        assert result.num_circuit_executions == 16

    def test_refinement_improves_over_first_round(self, manhattan):
        one = minimize_energy_parallel(
            manhattan, rounds=1, points_per_round=6, shots=4096, seed=9)
        three = minimize_energy_parallel(
            manhattan, rounds=3, points_per_round=6, shots=4096, seed=9)
        assert three.energy <= one.energy + 0.02

    def test_invalid_arguments_rejected(self, manhattan):
        with pytest.raises(ValueError):
            minimize_energy_parallel(manhattan, rounds=0)
        with pytest.raises(ValueError):
            minimize_energy_parallel(manhattan, points_per_round=1)

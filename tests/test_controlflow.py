"""Unit tests for the control-flow IR and static expansion pass."""

import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.circuit import CircuitError
from repro.circuits.controlflow import (
    DEFAULT_MAX_ITERATIONS,
    Condition,
    ForLoopOp,
    IfElseOp,
    WhileLoopOp,
    has_control_flow,
    is_control_flow,
    written_clbits_of,
)
from repro.circuits.qasm import QasmError, to_qasm
from repro.circuits.draw import draw
from repro.transpiler import expand_control_flow, is_statically_resolvable


def _body(num_qubits=2, num_clbits=2, gates=(("x", 0),)):
    qc = QuantumCircuit(num_qubits, num_clbits)
    for name, q in gates:
        qc._add(name, [q])
    return qc


def _teleport_like():
    """Measure feeds two if_tests — the canonical unresolvable shape."""
    qc = QuantumCircuit(3, 3)
    qc.h(0)
    qc.cx(0, 1)
    qc.measure(0, 0)
    qc.measure(1, 1)
    qc.if_test(([1], 1), _body(3, 3, (("x", 2),)))
    qc.if_test(([0], 1), _body(3, 3, (("z", 2),)))
    qc.measure(2, 2)
    return qc


class TestCondition:
    def test_coerce_single_clbit(self):
        cond = Condition.coerce((2, 1))
        assert cond.clbits == (2,) and cond.value == 1

    def test_coerce_register(self):
        cond = Condition.coerce(([0, 3], 2))
        assert cond.clbits == (0, 3) and cond.value == 2

    def test_little_endian_evaluation(self):
        # clbits[0] is the least-significant bit.
        cond = Condition((0, 1), 2)
        assert cond.evaluate({0: 0, 1: 1})
        assert not cond.evaluate({0: 1, 1: 0})

    def test_missing_bits_read_zero(self):
        assert Condition((5,), 0).evaluate({})
        assert not Condition((5,), 1).evaluate({})

    @pytest.mark.parametrize("clbits,value", [
        ((), 0), ((0, 0), 1), ((-1,), 0), ((0,), 2), ((0, 1), 4),
    ])
    def test_validation(self, clbits, value):
        with pytest.raises(CircuitError):
            Condition(clbits, value)

    def test_remapped(self):
        cond = Condition((0, 2), 3).remapped({0: 5, 2: 1})
        assert cond.clbits == (5, 1) and cond.value == 3

    def test_coerce_garbage_rejected(self):
        with pytest.raises(CircuitError):
            Condition.coerce("c0 == 1")


class TestBuilders:
    def test_if_test_footprint(self):
        qc = QuantumCircuit(3, 3)
        qc.if_test(([2], 1), _body(3, 3, (("x", 0), ("x", 1))))
        inst = qc.instructions[-1]
        assert is_control_flow(inst)
        assert inst.qubits == (0, 1)
        # Condition clbits join the footprint even though no body
        # instruction touches them.
        assert inst.clbits == (2,)

    def test_for_loop_payload(self):
        qc = QuantumCircuit(2, 2)
        qc.for_loop(range(3), _body())
        op = qc.instructions[-1].gate
        assert isinstance(op, ForLoopOp)
        assert op.indexset == (0, 1, 2)

    def test_while_loop_default_cap(self):
        qc = QuantumCircuit(2, 2)
        qc.while_loop(([0], 0), _body(gates=(("x", 0),)))
        op = qc.instructions[-1].gate
        assert isinstance(op, WhileLoopOp)
        assert op.max_iterations == DEFAULT_MAX_ITERATIONS

    def test_while_loop_rejects_bad_cap(self):
        qc = QuantumCircuit(1, 1)
        with pytest.raises(CircuitError):
            qc.while_loop(([0], 0), _body(1, 1, (("x", 0),)),
                          max_iterations=0)

    def test_empty_bodies_rejected(self):
        from repro.circuits.controlflow import ControlFlowOp

        with pytest.raises(CircuitError):
            ControlFlowOp("if_else", ())

    def test_body_must_be_circuit(self):
        with pytest.raises(CircuitError):
            ForLoopOp(range(2), "not a circuit")

    def test_ops_are_unhashable(self):
        op = IfElseOp(([0], 1), _body())
        with pytest.raises(TypeError):
            hash(op)


class TestDepthBounds:
    def test_for_loop_multiplies(self):
        qc = QuantumCircuit(1, 1)
        body = QuantumCircuit(1, 1)
        body.x(0)
        body.x(0)
        qc.for_loop(range(5), body)
        assert qc.depth() == 10

    def test_if_takes_deepest_branch(self):
        qc = QuantumCircuit(2, 2)
        deep = QuantumCircuit(2, 2)
        for _ in range(4):
            deep.x(0)
        qc.if_test(([0], 1), _body(), deep)
        assert qc.depth() == 4

    def test_while_uses_iteration_cap(self):
        qc = QuantumCircuit(1, 1)
        body = QuantumCircuit(1, 1)
        body.x(0)
        body.measure(0, 0)
        qc.while_loop(([0], 0), body, max_iterations=7)
        assert qc.depth() == 14


class TestTypedErrors:
    def test_inverse_raises(self):
        qc = QuantumCircuit(3, 3)
        qc.if_test(([0], 1), _body(3, 3, (("x", 2),)))
        with pytest.raises(CircuitError, match="expand_control_flow"):
            qc.inverse()

    def test_adjoint_raises(self):
        qc = QuantumCircuit(3, 3)
        qc.for_loop(range(2), _body(3, 3))
        with pytest.raises(CircuitError):
            qc.adjoint()

    def test_without_measurements_raises(self):
        qc = _teleport_like()
        with pytest.raises(CircuitError):
            qc.without_measurements()

    def test_matrix_raises(self):
        op = ForLoopOp(range(2), _body())
        with pytest.raises(CircuitError, match="no unitary matrix"):
            op.matrix()

    def test_to_qasm_raises_typed(self):
        with pytest.raises(QasmError, match="expand_control_flow"):
            to_qasm(_teleport_like())

    def test_expanded_circuit_exports_fine(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.for_loop(range(2), _body(gates=(("x", 0), ("x", 0))))
        qc.measure(0, 0)
        text = to_qasm(expand_control_flow(qc))
        assert "OPENQASM 2.0" in text

    def test_draw_renders_control_flow(self):
        art = draw(_teleport_like())
        assert "if" in art


class TestMidcircuitPredicate:
    def test_end_measured_is_static(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure(0, 0)
        qc.measure(1, 1)
        assert not qc.has_midcircuit_measurement()

    def test_gate_after_measure_is_dynamic(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        qc.x(0)
        assert qc.has_midcircuit_measurement()

    def test_delay_and_barrier_after_measure_ignored(self):
        # ALAP pads measured circuits with delays — those must not
        # reroute static circuits onto the per-shot path.
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.measure(0, 0)
        qc.delay(0, 100.0)
        qc.barrier(0, 1)
        assert not qc.has_midcircuit_measurement()

    def test_remeasure_untouched_qubit_ignored(self):
        qc = QuantumCircuit(1, 2)
        qc.measure(0, 0)
        qc.measure(0, 1)
        assert not qc.has_midcircuit_measurement()

    def test_gate_on_other_qubit_ignored(self):
        qc = QuantumCircuit(2, 1)
        qc.measure(0, 0)
        qc.x(1)
        assert not qc.has_midcircuit_measurement()

    def test_reuse_after_reset_is_dynamic(self):
        qc = QuantumCircuit(1, 2)
        qc.h(0)
        qc.measure(0, 0)
        qc.reset(0)
        qc.h(0)
        qc.measure(0, 1)
        assert qc.has_midcircuit_measurement()


class TestExpandControlFlow:
    def test_for_loop_unrolls(self):
        qc = QuantumCircuit(1, 1)
        body = QuantumCircuit(1, 1)
        body.x(0)
        qc.for_loop(range(4), body)
        flat = expand_control_flow(qc)
        assert not has_control_flow(flat)
        assert flat.count_ops()["x"] == 4

    def test_resolvable_if_splices_taken_branch(self):
        qc = QuantumCircuit(1, 1)
        taken = QuantumCircuit(1, 1)
        taken.x(0)
        dropped = QuantumCircuit(1, 1)
        dropped.h(0)
        # Clbit 0 never written: reads 0, so the else branch runs.
        qc.if_test(([0], 1), dropped, taken)
        flat = expand_control_flow(qc)
        assert flat.count_ops() == {"x": 1}

    def test_unresolvable_if_kept(self):
        flat = expand_control_flow(_teleport_like())
        assert has_control_flow(flat)
        assert not is_statically_resolvable(_teleport_like())

    def test_strict_raises_on_unresolvable(self):
        with pytest.raises(CircuitError, match="not statically"):
            expand_control_flow(_teleport_like(), strict=True)

    def test_initially_false_while_dropped(self):
        qc = QuantumCircuit(1, 1)
        body = QuantumCircuit(1, 1)
        body.x(0)
        body.measure(0, 0)
        qc.while_loop(([0], 1), body)  # clbit 0 reads 0: never entered
        assert expand_control_flow(qc).count_ops() == {}

    def test_statically_infinite_while_raises(self):
        qc = QuantumCircuit(1, 1)
        body = QuantumCircuit(1, 1)
        body.x(0)  # never writes clbit 0
        qc.while_loop(([0], 0), body)
        with pytest.raises(CircuitError, match="statically infinite"):
            expand_control_flow(qc)

    def test_nested_loops_unroll_recursively(self):
        inner = QuantumCircuit(1, 1)
        inner.x(0)
        mid = QuantumCircuit(1, 1)
        mid.for_loop(range(3), inner)
        qc = QuantumCircuit(1, 1)
        qc.for_loop(range(2), mid)
        assert expand_control_flow(qc).count_ops()["x"] == 6

    def test_measure_inside_loop_poisons_later_conditions(self):
        qc = QuantumCircuit(1, 1)
        body = QuantumCircuit(1, 1)
        body.h(0)
        body.measure(0, 0)
        qc.for_loop(range(1), body)
        fix = QuantumCircuit(1, 1)
        fix.x(0)
        qc.if_test(([0], 1), fix)
        flat = expand_control_flow(qc)
        assert has_control_flow(flat)

    def test_loop_parameter_binds_per_iteration(self):
        from repro.circuits import Parameter

        theta = Parameter("theta")
        body = QuantumCircuit(1, 1)
        body.rz(theta, 0)
        qc = QuantumCircuit(1, 1)
        qc.for_loop(range(3), body, loop_parameter=theta)
        flat = expand_control_flow(qc)
        angles = [float(inst.params[0]) for inst in flat
                  if inst.name == "rz"]
        assert angles == [0.0, 1.0, 2.0]

    def test_written_clbits_descend_into_bodies(self):
        qc = QuantumCircuit(2, 3)
        qc.measure(0, 0)
        body = QuantumCircuit(2, 3)
        body.measure(1, 2)
        qc.if_test(([0], 1), body)
        assert written_clbits_of(qc) == (0, 2)

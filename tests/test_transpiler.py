"""Unit tests for the transpiler passes."""

import math

import numpy as np
import pytest

from repro.circuits import (
    BASIS_GATES,
    QuantumCircuit,
    ghz_circuit,
    qft_circuit,
    random_circuit,
)
from repro.circuits.gates import gate
from repro.sim import circuit_unitary, simulate_statevector
from repro.transpiler import (
    Layout,
    cancel_adjacent_pairs,
    circuit_duration,
    decompose_to_basis,
    fuse_oneq_runs,
    noise_aware_layout,
    optimize_circuit,
    partition_coupling,
    route_circuit,
    schedule_alap,
    transpile,
    transpile_for_partition,
    zyz_angles,
)


def _equiv_phase(u, v, tol=1e-8):
    k = np.argmax(np.abs(v))
    idx = np.unravel_index(k, v.shape)
    if abs(u[idx]) < 1e-12:
        return False
    phase = v[idx] / u[idx]
    return np.allclose(u * phase, v, atol=tol)


class TestZyzAngles:
    @pytest.mark.parametrize("name,params", [
        ("h", ()), ("x", ()), ("s", ()), ("t", ()), ("sx", ()),
        ("rz", (0.7,)), ("ry", (1.1,)), ("rx", (-0.3,)),
        ("u", (0.4, 1.2, -0.8)),
    ])
    def test_angles_reconstruct_gate(self, name, params):
        g = gate(name, *params)
        theta, phi, lam = zyz_angles(g.matrix())
        rebuilt = gate("u", theta, phi, lam).matrix()
        assert _equiv_phase(rebuilt, g.matrix())

    def test_identity_angles(self):
        theta, phi, lam = zyz_angles(np.eye(2, dtype=complex))
        assert theta == pytest.approx(0.0)
        assert (phi + lam) % (2 * math.pi) == pytest.approx(0.0, abs=1e-9)


class TestBasisDecomposition:
    def test_output_gates_in_basis(self):
        qc = qft_circuit(3)
        dec = decompose_to_basis(qc)
        assert set(dec.count_ops()) <= set(BASIS_GATES)

    def test_semantics_preserved(self):
        for seed in range(3):
            qc = random_circuit(3, 6, seed=seed)
            assert _equiv_phase(circuit_unitary(qc),
                                circuit_unitary(decompose_to_basis(qc)))

    def test_toffoli_decomposition(self):
        qc = QuantumCircuit(3)
        qc.ccx(0, 1, 2)
        dec = decompose_to_basis(qc)
        assert dec.num_cx() == 6
        assert _equiv_phase(circuit_unitary(qc), circuit_unitary(dec))

    def test_measures_pass_through(self):
        qc = ghz_circuit(2).measure_all()
        dec = decompose_to_basis(qc)
        assert dec.count_ops()["measure"] == 2


class TestLayout:
    def test_trivial(self):
        layout = Layout.trivial(3)
        assert layout.physical(1) == 1

    def test_from_sequence(self):
        layout = Layout.from_sequence([4, 2, 0])
        assert layout.physical(0) == 4
        assert layout.logical(2) == 1
        assert layout.logical(0) == 2
        assert layout.logical(3) is None

    def test_non_injective_rejected(self):
        with pytest.raises(ValueError):
            Layout({0: 1, 1: 1})

    def test_swap_physical(self):
        layout = Layout({0: 0, 1: 1})
        layout.swap_physical(0, 1)
        assert layout.physical(0) == 1
        assert layout.physical(1) == 0

    def test_swap_with_unoccupied(self):
        layout = Layout({0: 0})
        layout.swap_physical(0, 5)
        assert layout.physical(0) == 5

    def test_copy_independent(self):
        a = Layout({0: 0, 1: 1})
        b = a.copy()
        b.swap_physical(0, 1)
        assert a.physical(0) == 0


class TestMapping:
    def test_exhaustive_respects_interactions(self, line5):
        qc = QuantumCircuit(3)
        qc.cx(0, 1).cx(1, 2)
        layout = noise_aware_layout(qc, line5.coupling,
                                    line5.calibration)
        # Interacting qubits should be adjacent on the line.
        p = [layout.physical(q) for q in range(3)]
        assert abs(p[0] - p[1]) == 1
        assert abs(p[1] - p[2]) == 1

    def test_too_many_logical_qubits_rejected(self, line5):
        qc = QuantumCircuit(6)
        with pytest.raises(ValueError):
            noise_aware_layout(qc, line5.coupling, line5.calibration)

    def test_greedy_path_on_large_device(self, toronto):
        qc = QuantumCircuit(8)
        for q in range(7):
            qc.cx(q, q + 1)
        layout = noise_aware_layout(qc, toronto.coupling,
                                    toronto.calibration)
        placed = {layout.physical(q) for q in range(8)}
        assert len(placed) == 8


class TestRouting:
    def test_adjacent_gate_needs_no_swap(self, line5):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        routed = route_circuit(qc, line5.coupling, Layout.trivial(2),
                               line5.calibration)
        assert routed.num_swaps == 0

    def test_distant_gate_inserts_swaps(self, line5):
        qc = QuantumCircuit(5)
        qc.cx(0, 4)
        routed = route_circuit(qc, line5.coupling, Layout.trivial(5),
                               line5.calibration)
        assert routed.num_swaps == 3
        assert routed.circuit.num_cx() == 10  # 3 swaps * 3 + the gate

    def test_routing_preserves_semantics(self, line5):
        qc = random_circuit(4, 6, seed=13)
        dec = decompose_to_basis(qc)
        routed = route_circuit(dec, line5.coupling, Layout.trivial(4),
                               line5.calibration)
        sv_orig = np.abs(simulate_statevector(qc)) ** 2
        sv_routed = np.abs(
            simulate_statevector(routed.circuit)) ** 2
        # Compare marginals through the final layout.
        fl = routed.final_layout
        for idx in range(2 ** 4):
            bits = [(idx >> (3 - q)) & 1 for q in range(4)]
            pbits = [0] * 5
            for q in range(4):
                pbits[fl.physical(q)] = bits[q]
            pidx = 0
            for b in pbits:
                pidx = (pidx << 1) | b
            assert sv_orig[idx] == pytest.approx(sv_routed[pidx],
                                                 abs=1e-9)

    def test_measure_remapped_through_layout(self, line5):
        qc = QuantumCircuit(2, 2)
        qc.cx(0, 1).measure(0, 0).measure(1, 1)
        layout = Layout({0: 3, 1: 4})
        routed = route_circuit(qc, line5.coupling, layout,
                               line5.calibration)
        measures = [(i.qubits[0], i.clbits[0])
                    for i in routed.circuit if i.name == "measure"]
        assert measures == [(3, 0), (4, 1)]

    def test_multiq_gate_rejected(self, line5):
        qc = QuantumCircuit(3)
        qc.ccx(0, 1, 2)
        with pytest.raises(ValueError):
            route_circuit(qc, line5.coupling, Layout.trivial(3))


class TestOptimize:
    def test_cancel_cx_pair(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).cx(0, 1)
        assert cancel_adjacent_pairs(qc).size() == 0

    def test_no_cancel_across_blocker(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).x(0).cx(0, 1)
        assert cancel_adjacent_pairs(qc).size() == 3

    def test_no_cancel_reversed_cx(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).cx(1, 0)
        assert cancel_adjacent_pairs(qc).size() == 2

    def test_h_pair_cancels(self):
        qc = QuantumCircuit(1)
        qc.h(0).h(0)
        assert cancel_adjacent_pairs(qc).size() == 0

    def test_fuse_rz_run(self):
        qc = QuantumCircuit(1)
        qc.rz(0.3, 0).rz(0.4, 0).rz(-0.7, 0)
        fused = fuse_oneq_runs(qc)
        assert fused.size() == 0  # total rotation is zero

    def test_fuse_preserves_semantics(self):
        qc = random_circuit(3, 8, seed=21)
        fused = fuse_oneq_runs(decompose_to_basis(qc))
        assert _equiv_phase(circuit_unitary(qc), circuit_unitary(fused))

    def test_fusion_respects_cx_boundary(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).h(0)
        fused = fuse_oneq_runs(qc)
        # The two h cannot merge across the cx.
        names = [i.name for i in fused]
        assert names.count("cx") == 1
        assert _equiv_phase(circuit_unitary(qc), circuit_unitary(fused))

    def test_level3_fixpoint_smaller_or_equal(self):
        qc = decompose_to_basis(random_circuit(3, 10, seed=2))
        for level in (0, 1, 2, 3):
            opt = optimize_circuit(qc, level)
            assert opt.size() <= qc.size()
            assert _equiv_phase(circuit_unitary(qc), circuit_unitary(opt))

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            transpile(QuantumCircuit(1), None, optimization_level=7)

    def test_fused_run_memo_is_bit_identical(self):
        # The fused-run memo (service traffic re-fuses the same few
        # runs endlessly) must be invisible: a cold fuse and a memoized
        # fuse of the same circuit produce identical instructions.
        from repro.transpiler import optimize as opt_mod

        qc = decompose_to_basis(random_circuit(3, 14, seed=8))
        saved = dict(opt_mod._FUSED_RUNS)
        try:
            opt_mod._FUSED_RUNS.clear()
            cold = optimize_circuit(qc, 3)
            assert len(opt_mod._FUSED_RUNS) > 0  # the memo populated
            warm = optimize_circuit(qc, 3)
            assert [(i.name, i.params, i.qubits) for i in cold] == [
                (i.name, i.params, i.qubits) for i in warm]
            assert _equiv_phase(circuit_unitary(qc),
                                circuit_unitary(warm))
        finally:
            opt_mod._FUSED_RUNS.clear()
            opt_mod._FUSED_RUNS.update(saved)


class TestSchedule:
    def test_delays_inserted_in_gaps(self):
        qc = QuantumCircuit(2, 2)
        qc.x(0).x(0).x(0)
        qc.x(1)
        qc.cx(0, 1)
        scheduled = schedule_alap(qc, {"x": 10.0, "cx": 100.0})
        # Qubit 1's x is ALAP-scheduled right before the cx: no gap.
        assert scheduled.count_ops().get("delay", 0) == 0

    def test_mid_circuit_gap_gets_delay(self):
        qc = QuantumCircuit(2, 2)
        qc.x(1)
        qc.x(0).x(0).x(0)
        qc.cx(0, 1)
        qc.x(1)  # forces qubit 1's first x early via dependency? no —
        # make a real gap: qubit 1 interacts at start and at end.
        qc2 = QuantumCircuit(2)
        qc2.cx(0, 1)
        qc2.x(0).x(0).x(0)
        qc2.cx(0, 1)
        scheduled = schedule_alap(qc2, {"x": 10.0, "cx": 100.0})
        assert scheduled.count_ops().get("delay", 0) >= 1

    def test_circuit_duration(self):
        qc = QuantumCircuit(2)
        qc.x(0).cx(0, 1)
        assert circuit_duration(qc, {"x": 35.0, "cx": 300.0}) == 335.0


class TestTranspileEndToEnd:
    def test_output_in_basis(self, toronto):
        result = transpile_for_partition(
            qft_circuit(3).measure_all(), toronto, (0, 1, 2, 3))
        names = set(result.circuit.count_ops())
        assert names <= {"rz", "sx", "x", "cx", "measure", "delay",
                         "barrier"}

    def test_respects_partition_coupling(self, toronto):
        partition = (0, 1, 4, 7)
        result = transpile_for_partition(
            qft_circuit(4).measure_all(), toronto, partition)
        local_coupling = partition_coupling(toronto, partition)
        for inst in result.circuit:
            if len(inst.qubits) == 2:
                assert local_coupling.is_edge(*inst.qubits)

    def test_optimization_level_reduces_gates(self, line5):
        qc = qft_circuit(4)
        low = transpile(qc, line5.coupling, line5.calibration,
                        optimization_level=0)
        high = transpile(qc, line5.coupling, line5.calibration,
                         optimization_level=3)
        assert high.circuit.size() <= low.circuit.size()

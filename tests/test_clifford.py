"""Unit tests for the Clifford group machinery."""

import numpy as np
import pytest

from repro.circuits import (
    QuantumCircuit,
    clifford_group_1q,
    clifford_group_2q,
)


class TestGroupOrders:
    def test_1q_group_order(self):
        assert len(clifford_group_1q()) == 24

    def test_2q_group_order(self):
        assert len(clifford_group_2q()) == 11520


class TestElements:
    def test_decompositions_reproduce_matrices(self):
        from repro.sim import circuit_unitary

        group = clifford_group_1q()
        for elem in group.elements:
            qc = QuantumCircuit(1)
            elem.apply_to(qc, [0])
            u = circuit_unitary(qc)
            # Equal up to global phase.
            k = np.argmax(np.abs(elem.matrix))
            idx = np.unravel_index(k, elem.matrix.shape)
            phase = elem.matrix[idx] / u[idx]
            assert np.allclose(u * phase, elem.matrix, atol=1e-8)

    def test_inverse_lookup(self):
        group = clifford_group_1q()
        rng = np.random.default_rng(5)
        for _ in range(10):
            elem = group.sample(rng)
            inv = group.inverse_of(elem.matrix)
            prod = inv.matrix @ elem.matrix
            phase = prod[0, 0] / abs(prod[0, 0])
            assert np.allclose(prod / phase, np.eye(2), atol=1e-8)

    def test_inverse_of_non_member_rejected(self):
        group = clifford_group_1q()
        t_gate = np.diag([1, np.exp(1j * np.pi / 4)])
        with pytest.raises(KeyError):
            group.inverse_of(t_gate)

    def test_sampling_uniformish(self):
        group = clifford_group_1q()
        rng = np.random.default_rng(0)
        seen = {id(group.sample(rng)) for _ in range(300)}
        # 24 elements, 300 draws: expect to have seen most of them.
        assert len(seen) >= 20

    def test_2q_inverse_closure(self):
        group = clifford_group_2q()
        rng = np.random.default_rng(1)
        total = np.eye(4, dtype=complex)
        for _ in range(5):
            total = group.sample(rng).matrix @ total
        inv = group.inverse_of(total)
        prod = inv.matrix @ total
        k = np.argmax(np.abs(prod))
        idx = np.unravel_index(k, prod.shape)
        phase = prod[idx] / abs(prod[idx])
        assert np.allclose(prod / phase, np.eye(4), atol=1e-8)

"""Unit tests for the noisy density-matrix simulator."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.sim import NoiseModel, run_circuit, simulate_density_matrix


def _simple_noise(n=2, cx_err=0.02, ro=0.02):
    return NoiseModel(
        oneq_error={q: 1e-3 for q in range(n)},
        twoq_error={(a, a + 1): cx_err for a in range(n - 1)},
        readout_error={q: (ro, ro) for q in range(n)},
        t1={q: 80_000.0 for q in range(n)},
        t2={q: 70_000.0 for q in range(n)},
    )


class TestNoiselessEvolution:
    def test_pure_state_density_matrix(self):
        rho = simulate_density_matrix(ghz_circuit(2))
        expected = np.zeros((4, 4), dtype=complex)
        expected[0, 0] = expected[3, 3] = 0.5
        expected[0, 3] = expected[3, 0] = 0.5
        assert np.allclose(rho, expected)

    def test_trace_one(self):
        rho = simulate_density_matrix(ghz_circuit(3),
                                      noise_model=_simple_noise(3))
        assert np.trace(rho).real == pytest.approx(1.0)

    def test_positive_semidefinite_under_noise(self):
        rho = simulate_density_matrix(ghz_circuit(3),
                                      noise_model=_simple_noise(3, 0.05))
        eigs = np.linalg.eigvalsh(rho)
        assert eigs.min() > -1e-10

    def test_reset_returns_to_zero(self):
        qc = QuantumCircuit(1)
        qc.x(0).reset(0)
        rho = simulate_density_matrix(qc)
        assert rho[0, 0].real == pytest.approx(1.0)

    def test_reset_of_superposition(self):
        qc = QuantumCircuit(1)
        qc.h(0).reset(0)
        rho = simulate_density_matrix(qc)
        assert rho[0, 0].real == pytest.approx(1.0)
        assert abs(rho[0, 1]) < 1e-12


class TestNoiseEffects:
    def test_noise_reduces_fidelity(self):
        qc = ghz_circuit(2).measure_all()
        clean = run_circuit(qc, shots=0)
        noisy = run_circuit(qc, noise_model=_simple_noise(2, 0.08),
                            shots=0)
        p_good_clean = clean.probabilities["00"] + clean.probabilities["11"]
        p_good_noisy = (noisy.probabilities.get("00", 0)
                        + noisy.probabilities.get("11", 0))
        assert p_good_clean == pytest.approx(1.0)
        assert p_good_noisy < p_good_clean

    def test_error_scales_amplify_noise(self):
        qc = ghz_circuit(2).measure_all()
        nm = _simple_noise(2, 0.03)
        base = run_circuit(qc, noise_model=nm, shots=0)
        # The cx is instruction index 1 in the GHZ circuit.
        boosted = run_circuit(qc, noise_model=nm, shots=0,
                              error_scales={1: 4.0})
        good = lambda r: (r.probabilities.get("00", 0)
                          + r.probabilities.get("11", 0))
        assert good(boosted) < good(base)

    def test_readout_error_applied(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        nm = NoiseModel(readout_error={0: (0.1, 0.0)})
        res = run_circuit(qc, noise_model=nm, shots=0)
        assert res.probabilities["1"] == pytest.approx(0.1)

    def test_delay_causes_decoherence(self):
        qc = QuantumCircuit(1, 1)
        qc.x(0)
        qc.delay(0, 40_000.0)
        qc.measure(0, 0)
        nm = NoiseModel(t1={0: 40_000.0}, t2={0: 40_000.0})
        res = run_circuit(qc, noise_model=nm, shots=0)
        assert res.probabilities["0"] == pytest.approx(1 - np.exp(-1),
                                                       abs=1e-6)


class TestSampling:
    def test_counts_sum_to_shots(self):
        qc = ghz_circuit(2).measure_all()
        res = run_circuit(qc, noise_model=_simple_noise(2), shots=500,
                          seed=2)
        assert sum(res.counts.values()) == 500

    def test_seeded_counts_reproducible(self):
        qc = ghz_circuit(2).measure_all()
        a = run_circuit(qc, shots=200, seed=9).counts
        b = run_circuit(qc, shots=200, seed=9).counts
        assert a == b

    def test_density_matrix_optional(self):
        qc = ghz_circuit(2).measure_all()
        res = run_circuit(qc, shots=10, seed=0)
        assert res.density_matrix is None
        res = run_circuit(qc, shots=10, seed=0, keep_density_matrix=True)
        assert res.density_matrix is not None

    def test_expectation_z(self):
        qc = QuantumCircuit(2, 2)
        qc.x(0).measure(0, 0).measure(1, 1)
        res = run_circuit(qc, shots=0)
        assert res.expectation_z([0]) == pytest.approx(-1.0)
        assert res.expectation_z([1]) == pytest.approx(1.0)
        assert res.expectation_z([0, 1]) == pytest.approx(-1.0)

    def test_expectation_z_non_contiguous_clbits(self):
        """Regression: clbits {0, 2} measured — key position 1 is clbit 2.

        The old implementation indexed the key string by raw clbit number
        and either raised IndexError or read the wrong bit.
        """
        qc = QuantumCircuit(3, 3)
        qc.x(2).measure(0, 0).measure(2, 2)
        res = run_circuit(qc, shots=0)
        assert res.measured_clbits == (0, 2)
        assert res.expectation_z([0]) == pytest.approx(1.0)
        assert res.expectation_z([2]) == pytest.approx(-1.0)
        assert res.expectation_z([0, 2]) == pytest.approx(-1.0)

    def test_expectation_z_unmeasured_clbit_rejected(self):
        qc = QuantumCircuit(3, 3)
        qc.measure(0, 0).measure(2, 2)
        res = run_circuit(qc, shots=0)
        with pytest.raises(ValueError):
            res.expectation_z([1])

"""Unit tests for readout confusion and sampling."""

import numpy as np
import pytest

from repro.sim import apply_readout_confusion, counts_to_probs, sample_counts


def _confusion(p01, p10):
    return np.array([[1 - p01, p10], [p01, 1 - p10]])


class TestConfusion:
    def test_identity_confusion_is_noop(self):
        probs = {"01": 0.25, "10": 0.75}
        out = apply_readout_confusion(probs, [np.eye(2), np.eye(2)])
        assert out == pytest.approx(probs)

    def test_single_bit_flip_probability(self):
        out = apply_readout_confusion({"0": 1.0}, [_confusion(0.2, 0.0)])
        assert out == pytest.approx({"0": 0.8, "1": 0.2})

    def test_asymmetric_confusion(self):
        out = apply_readout_confusion({"1": 1.0}, [_confusion(0.0, 0.3)])
        assert out == pytest.approx({"0": 0.3, "1": 0.7})

    def test_independent_bits(self):
        out = apply_readout_confusion(
            {"00": 1.0}, [_confusion(0.1, 0.0), _confusion(0.2, 0.0)])
        assert out["00"] == pytest.approx(0.9 * 0.8)
        assert out["11"] == pytest.approx(0.1 * 0.2)

    def test_probability_conserved(self):
        probs = {"00": 0.3, "01": 0.2, "10": 0.1, "11": 0.4}
        out = apply_readout_confusion(
            probs, [_confusion(0.1, 0.2), _confusion(0.05, 0.07)])
        assert sum(out.values()) == pytest.approx(1.0)

    def test_wrong_matrix_count_rejected(self):
        with pytest.raises(ValueError):
            apply_readout_confusion({"00": 1.0}, [np.eye(2)])

    def test_empty_distribution(self):
        assert apply_readout_confusion({}, []) == {}


class TestSampling:
    def test_shots_conserved(self):
        counts = sample_counts({"0": 0.5, "1": 0.5}, 1000, seed=0)
        assert sum(counts.values()) == 1000

    def test_zero_shots(self):
        assert sample_counts({"0": 1.0}, 0) == {}

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            sample_counts({"0": 0.0}, 10)

    def test_normalizes_unnormalized_input(self):
        counts = sample_counts({"0": 2.0, "1": 2.0}, 100, seed=1)
        assert sum(counts.values()) == 100

    def test_counts_to_probs(self):
        assert counts_to_probs({"0": 3, "1": 1}) == pytest.approx(
            {"0": 0.75, "1": 0.25})

    def test_counts_to_probs_empty(self):
        assert counts_to_probs({}) == {}

"""Gateway + overload-protection integration tests: auth-gated
submit/status/result/cancel, refusals persisted terminally, the
accept/shed partition replaying bit-identically, fenced retry
abandonment, and deterministic shutdown of queued work."""

import os
import threading
import time

import pytest

from repro.circuits import QuantumCircuit
from repro.core.executor import ExecutionCache
from repro.hardware import linear_device
from repro.service import (
    AdmissionPolicy,
    Gateway,
    JobStatus,
    QuantumProvider,
    RetryPolicy,
    UserQuota,
)
from repro.service.retry import (
    JobTimeoutError,
    publication_allowed,
)
from repro.workloads import synthesize_traffic, workload

TOKENS = {"tok-a": "alice", "tok-b": "bob", "tok-c": "carol"}
BY_USER = {user: token for token, user in TOKENS.items()}


def quota_policy(**kwargs):
    kwargs.setdefault("quotas", {
        "alice": UserQuota(2000.0, 4, "interactive"),
        "bob": UserQuota(2000.0, 4, "batch"),
        "carol": UserQuota(2000.0, 4, "best_effort"),
    })
    kwargs.setdefault("max_queue_depth", 6)
    return AdmissionPolicy(**kwargs)


def make_gateway(provider, **policy_kwargs):
    backend = provider.fleet_backend(
        [linear_device(5, seed=0), linear_device(6, seed=1)],
        name="gw-fleet", batch_window_ns=0.0, priority_aging_ns=2e5)
    return Gateway(backend, quota_policy(**policy_kwargs), TOKENS,
                   shots=0, execute=False)


def overload_stream(num=30, seed=11):
    """A sustained past-knee arrival stream across the three users."""
    return synthesize_traffic(num, pattern="poisson",
                              mean_interarrival_ns=2e5, seed=seed,
                              num_users=3)


def drive(gateway, stream):
    """Submit the stream round-robin across the tokens; returns the
    per-submission (ok, status, job_id) tuples."""
    tokens = list(TOKENS)
    out = []
    for i, sub in enumerate(stream):
        response = gateway.submit(tokens[i % 3], sub.circuit,
                                  sub.arrival_ns)
        out.append((response["ok"],
                    response.get("status") or response.get("error"),
                    response["job_id"]))
    return out


class TestGatewayAuth:
    def test_bad_token_turned_away(self):
        with QuantumProvider() as provider:
            gateway = make_gateway(provider)
            qc = workload("bell").circuit()
            assert gateway.submit("wrong", qc, 0.0)["error"] == "AuthError"
            assert gateway.status(None, "job-000001")["ok"] is False
            assert gateway.counts["auth_failed"] == 2
            assert gateway.counts["submitted"] == 0

    def test_foreign_ticket_looks_unknown(self):
        with QuantumProvider() as provider:
            gateway = make_gateway(provider)
            qc = workload("bell").circuit()
            job_id = gateway.submit("tok-a", qc, 0.0)["job_id"]
            mine = gateway.status("tok-a", job_id)
            theirs = gateway.status("tok-b", job_id)
            assert mine["ok"]
            assert not theirs["ok"]
            assert theirs["error"] == "UnknownJobError"

    def test_needs_tokens(self):
        with QuantumProvider() as provider:
            backend = provider.fleet_backend(
                [linear_device(5, seed=0)], name="f")
            with pytest.raises(ValueError):
                Gateway(backend, quota_policy(), {})


class TestGatewayLifecycle:
    def test_submit_flush_result_roundtrip(self):
        with QuantumProvider() as provider:
            gateway = make_gateway(provider)
            responses = drive(gateway, overload_stream())
            accepted = [r for r in responses if r[0]]
            refused = [r for r in responses if not r[0]]
            assert accepted and refused  # past the knee: both happen
            flushed = gateway.flush(seed=5)
            assert flushed["programs"] == len(accepted)
            ticket = gateway.ticket(accepted[0][2])
            result = gateway.result(BY_USER[ticket.user], accepted[0][2])
            assert result["ok"] and result["status"] == "done"
            assert result["turnaround_ns"][0] > 0

    def test_refusals_carry_retry_hints(self):
        with QuantumProvider() as provider:
            gateway = make_gateway(provider)
            responses = drive(gateway, overload_stream())
            shed_ids = [job_id for ok, status, job_id in responses
                        if not ok and status == "shed"]
            assert shed_ids
            ticket = gateway.ticket(shed_ids[0])
            refusal = gateway.result(BY_USER[ticket.user], shed_ids[0])
            assert refusal["ok"] is False
            assert refusal["status"] == "shed"
            assert refusal["retry_after_ns"] is not None

    def test_accounting_invariant(self):
        with QuantumProvider() as provider:
            gateway = make_gateway(provider)
            drive(gateway, overload_stream())
            counts = gateway.summary()["counts"]
            assert counts["accepted"] + counts["shed"] \
                + counts["rejected"] == counts["submitted"] > 0

    def test_cancel_before_flush_only(self):
        with QuantumProvider() as provider:
            gateway = make_gateway(provider)
            qc = workload("bell").circuit()
            first = gateway.submit("tok-a", qc, 0.0)["job_id"]
            second = gateway.submit("tok-a", qc, 1e5)["job_id"]
            assert gateway.cancel("tok-a", first)["ok"]
            assert gateway.status("tok-a", first)["status"] == "cancelled"
            gateway.flush()
            assert gateway.cancel("tok-a", second)["ok"] is False
            # The cancelled ticket never reached the scheduler.
            assert gateway.carriers[-1].result().metadata.num_programs == 1

    def test_handle_envelope_dispatch(self):
        with QuantumProvider() as provider:
            gateway = make_gateway(provider)
            qc = workload("bell").circuit()
            submitted = gateway.handle({
                "op": "submit", "token": "tok-a",
                "circuits": qc, "arrival_ns": 0.0})
            assert submitted["ok"]
            assert gateway.handle({"op": "flush"})["programs"] == 1
            status = gateway.handle({
                "op": "status", "token": "tok-a",
                "job_id": submitted["job_id"]})
            assert status["ok"]
            assert gateway.handle({"op": "summary"})["counts"][
                "submitted"] == 1
            assert gateway.handle({"op": "nope"})["error"] \
                == "UnknownOpError"
            bad = gateway.handle({"op": "submit", "token": "tok-a"})
            assert bad["ok"] is False


class TestRefusalDurability:
    def test_refusals_stored_terminally_and_rehydrated(self, tmp_path):
        store_path = os.fspath(tmp_path / "jobs.sqlite")
        with QuantumProvider(store_path=store_path) as provider:
            gateway = make_gateway(provider)
            responses = drive(gateway, overload_stream())
            refused_ids = [job_id for ok, _, job_id in responses
                           if not ok]
            assert refused_ids
            for job_id in refused_ids:
                record = provider.store.get(job_id)
                assert record.status in ("shed", "rejected")
                assert not record.is_pending
        # A restarted provider neither re-queues nor re-runs refusals.
        with QuantumProvider(store_path=store_path) as resumed:
            assert resumed.store.pending() == []
            job = resumed.job(refused_ids[0])
            assert job.status() in (JobStatus.SHED, JobStatus.REJECTED)
            with pytest.raises(Exception) as exc_info:
                job.result()
            assert "admission" in str(exc_info.value).lower() \
                or "shed" in str(exc_info.value).lower() \
                or "backpressure" in str(exc_info.value).lower()

    def test_refusals_share_the_job_id_space(self):
        with QuantumProvider() as provider:
            gateway = make_gateway(provider)
            responses = drive(gateway, overload_stream(num=10))
            numbers = [int(job_id.split("-")[1])
                       for _, _, job_id in responses]
            assert numbers == sorted(numbers)
            assert len(set(numbers)) == len(numbers)


class TestOverloadReplay:
    def test_accept_shed_partition_replays_bit_identically(self):
        """Satellite: the same traffic trace through two fresh gateways
        produces the identical accept/shed partition, ids included."""
        def run():
            with QuantumProvider() as provider:
                gateway = make_gateway(provider)
                responses = drive(gateway, overload_stream())
                return responses, gateway.summary()["counts"], [
                    gateway.ticket(job_id).decision.to_dict()
                    for _, _, job_id in responses]

        first = run()
        second = run()
        assert first == second

    def test_interactive_flood_cannot_starve_best_effort(self):
        """Satellite: under a sustained 2x-saturation flood, every
        accepted best-effort program still completes (aging)."""
        with QuantumProvider() as provider:
            gateway = make_gateway(provider, max_queue_depth=None)
            stream = overload_stream(num=40)
            responses = drive(gateway, stream)
            accepted = [job_id for ok, _, job_id in responses if ok]
            assert gateway.flush(seed=2)["programs"] == len(accepted)
            best_effort = [
                job_id for job_id in accepted
                if gateway.ticket(job_id).decision.priority_class
                == "best_effort"]
            assert best_effort
            for job_id in best_effort:
                ticket = gateway.ticket(job_id)
                result = gateway.result(BY_USER[ticket.user], job_id)
                assert result["ok"]
                assert all(t is not None and t > 0
                           for t in result["turnaround_ns"])


class TestAttemptFencing:
    def test_abandoned_attempt_cannot_publish(self):
        """Satellite: a timed-out attempt's daemon thread keeps running
        but its writes into gated shared state are discarded."""
        cache = ExecutionCache()
        cache.write_gate = publication_allowed
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure_all()
        release = threading.Event()
        finished = threading.Event()

        def slow_attempt():
            release.wait(5.0)  # outlive the timeout deliberately
            cache.ideal(qc)    # late publication attempt
            finished.set()

        policy = RetryPolicy(max_attempts=1, attempt_timeout_s=0.05)
        with pytest.raises(JobTimeoutError):
            policy.run_attempt(slow_attempt, "job-fence", 1)
        release.set()
        assert finished.wait(5.0)
        assert cache.gated_writes == 1
        assert cache.stats["ideal_misses"] == 1
        # The live (unfenced) caller recomputes: still a miss, proving
        # the abandoned thread's value never landed in the table.
        cache.ideal(qc)
        assert cache.stats["ideal_misses"] == 2

    def test_live_attempt_publishes_normally(self):
        cache = ExecutionCache()
        cache.write_gate = publication_allowed
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.measure_all()

        def quick_attempt():
            cache.ideal(qc)
            return "done"

        policy = RetryPolicy(max_attempts=1, attempt_timeout_s=5.0)
        assert policy.run_attempt(quick_attempt, "job-live", 1) == "done"
        assert cache.gated_writes == 0
        cache.ideal(qc)
        assert cache.stats["ideal_hits"] == 1


class TestDeterministicShutdown:
    def test_queued_jobs_cancelled_and_recorded(self, tmp_path):
        """Satellite: shutdown(wait=False) cancels not-yet-started
        jobs in submission order and stores them CANCELLED, so resume
        never silently re-runs them."""
        store_path = os.fspath(tmp_path / "jobs.sqlite")
        provider = QuantumProvider(store_path=store_path, job_workers=1)
        backend = provider.simulator(linear_device(4, seed=0))
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.cx(1, 2)
        qc.measure_all()
        jobs = [backend.run(qc, shots=128, seed=i) for i in range(5)]
        provider.shutdown(wait=False)
        statuses = [job.status() for job in jobs]
        assert statuses.count(JobStatus.CANCELLED) >= len(jobs) - 1
        with QuantumProvider(store_path=store_path) as resumed:
            stored = {r.job_id: r.status for r in resumed.store.jobs()}
            cancelled = [s for s in stored.values() if s == "cancelled"]
            assert len(cancelled) >= len(jobs) - 1
            # Cancelled jobs are terminal: not pending, never resumed.
            pending_ids = {r.job_id for r in resumed.store.pending()}
            for job, status in zip(jobs, statuses):
                if status is JobStatus.CANCELLED:
                    assert job.job_id not in pending_ids

    def test_graceful_shutdown_still_drains(self):
        provider = QuantumProvider(job_workers=1)
        backend = provider.simulator(linear_device(4, seed=0))
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure_all()
        jobs = [backend.run(qc, shots=64, seed=i) for i in range(3)]
        provider.shutdown(wait=True)
        assert all(job.status() is JobStatus.DONE for job in jobs)

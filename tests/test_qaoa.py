"""Unit tests for the QAOA MaxCut module."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.vqe import (
    expected_cut_value,
    max_cut_value,
    maxcut_cost,
    qaoa_circuit,
    run_qaoa_grid_ideal,
    run_qaoa_grid_parallel,
)


@pytest.fixture(scope="module")
def square():
    return nx.cycle_graph(4)


class TestCostFunctions:
    def test_maxcut_cost_counts_crossing_edges(self, square):
        assert maxcut_cost("0101", square) == 4.0
        assert maxcut_cost("0000", square) == 0.0
        assert maxcut_cost("0011", square) == 2.0

    def test_weighted_edges(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=2.5)
        assert maxcut_cost("01", g) == 2.5

    def test_expected_cut_is_convex_combination(self, square):
        probs = {"0101": 0.5, "0000": 0.5}
        assert expected_cut_value(probs, square) == pytest.approx(2.0)

    def test_max_cut_bruteforce(self, square):
        assert max_cut_value(square) == 4.0
        assert max_cut_value(nx.complete_graph(3)) == 2.0


class TestQaoaCircuit:
    def test_structure(self, square):
        qc = qaoa_circuit(square, [0.4], [0.7])
        ops = qc.count_ops()
        assert ops["h"] == 4
        assert ops["rzz"] == 4
        assert ops["rx"] == 4

    def test_depth_p_layers(self, square):
        qc = qaoa_circuit(square, [0.4, 0.2], [0.7, 0.1])
        assert qc.count_ops()["rzz"] == 8

    def test_mismatched_angles_rejected(self, square):
        with pytest.raises(ValueError):
            qaoa_circuit(square, [0.4], [0.7, 0.1])

    def test_nonstandard_labels_rejected(self):
        g = nx.Graph()
        g.add_edge(2, 5)
        with pytest.raises(ValueError):
            qaoa_circuit(g, [0.1], [0.1])

    def test_zero_angles_give_uniform_cut(self, square):
        """gamma=beta=0 leaves the uniform superposition: expected cut =
        half the total edge weight."""
        from repro.sim import ideal_probabilities

        qc = qaoa_circuit(square, [0.0], [0.0]).measure_all()
        cut = expected_cut_value(ideal_probabilities(qc), square)
        assert cut == pytest.approx(2.0)


class TestGridDrivers:
    def test_ideal_grid_beats_random_guessing(self, square):
        result = run_qaoa_grid_ideal(square, resolution=4)
        # Random assignment expects cut 2; QAOA p=1 should beat it.
        assert result.best[2] > 2.3
        assert result.approximation_ratio(square) > 0.55

    def test_grid_shape(self, square):
        result = run_qaoa_grid_ideal(square, resolution=3)
        assert len(result.expected_cuts) == 9
        assert len(result.gammas) == len(result.betas) == 9

    def test_parallel_grid_on_device(self, manhattan, square):
        result = run_qaoa_grid_parallel(square, manhattan, resolution=3,
                                        shots=0, seed=2)
        assert result.num_simultaneous == 9
        # 9 programs x 4 qubits over 65.
        assert result.throughput == pytest.approx(36 / 65)
        ideal = run_qaoa_grid_ideal(square, resolution=3)
        # Noise attenuates but should not destroy the signal.
        assert result.best[2] > 0.75 * ideal.best[2]

"""ExecutionService bit-identity and routing (the perf-opt acceptance gate).

Sharded execution must be **bit-identical** to the serial
:func:`repro.sim.executor.run_parallel` path — same counts, same
probabilities, same clbit records — regardless of mode (serial / thread /
process / auto) or worker count, because the joint half of the batch
(ASAP padding, crosstalk scales, seed spawning) runs in the parent and
each program's RNG stream is a pre-spawned ``SeedSequence`` child.  The
randomized suite here sweeps programs x shots x seeds x worker counts.
Also covers the measured ``choose_route`` decision table and the
broken-pool inline fallbacks.
"""

from concurrent.futures import BrokenExecutor, Future, ThreadPoolExecutor

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.core import ExecutionService, execute_allocation, qucp_allocate, run_batch
from repro.core.execution_service import (
    _PROCESS_MIN_BATCH_MS,
    _SERIAL_MAX_BATCH,
    _THREAD_MIN_BATCH_MS,
)
from repro.hardware import ibm_toronto
from repro.sim.executor import Program, run_parallel
from repro.workloads import workload

#: Disjoint linear chains of ibm_toronto's heavy-hex coupling map —
#: every consecutive pair is a real link, so locally nearest-neighbour
#: circuits are always executable on them.
CHAINS = [(0, 1, 2), (3, 5, 8), (12, 13, 14, 16), (19, 20), (22, 25, 26)]


def random_program(chain, rng, depth=12):
    """A random device-respecting program on *chain* (local NN CXs)."""
    n = len(chain)
    circuit = QuantumCircuit(n, n)
    for _ in range(depth):
        r = rng.random()
        if n > 1 and r < 0.35:
            i = int(rng.integers(0, n - 1))
            circuit.cx(i, i + 1)
        elif r < 0.6:
            circuit.rz(float(rng.uniform(0.0, 2.0 * np.pi)),
                       int(rng.integers(0, n)))
        elif r < 0.8:
            circuit.h(int(rng.integers(0, n)))
        else:
            circuit.x(int(rng.integers(0, n)))
    circuit.measure_all()
    return Program(circuit, chain)


def random_job(rng, max_programs=5):
    k = int(rng.integers(1, min(max_programs, len(CHAINS)) + 1))
    picked = sorted(rng.choice(len(CHAINS), size=k, replace=False))
    return [random_program(CHAINS[i], rng) for i in picked]


def assert_identical(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.counts == w.counts
        assert g.probabilities == w.probabilities
        assert g.shots == w.shots
        assert g.measured_clbits == w.measured_clbits


class TestShardedEquivalence:
    """Randomized: every route x worker count reproduces serial exactly."""

    @pytest.mark.parametrize("trial", range(4))
    def test_routes_and_worker_counts_are_bit_identical(self, trial):
        rng = np.random.default_rng(1000 + trial)
        device = ibm_toronto()
        programs = random_job(rng)
        shots = int(rng.choice([0, 257, 1024]))
        seed = int(rng.integers(0, 2**31))
        want = run_parallel(programs, device, shots=shots, seed=seed)
        routes = [("serial", 1), ("thread", 2), ("process", 1),
                  ("process", 2), ("process", 3), ("auto", 2)]
        for mode, workers in routes:
            with ExecutionService(max_workers=workers, mode=mode) as svc:
                got = svc.run_parallel(programs, device, shots=shots,
                                       seed=seed)
            assert_identical(got, want)

    def test_seed_sequence_and_options_round_trip(self):
        rng = np.random.default_rng(7)
        device = ibm_toronto()
        programs = random_job(rng, max_programs=3)
        base = np.random.SeedSequence(99)
        for kwargs in (
            dict(seed=base, shots=128),
            dict(seed=11, shots=64, noisy=False),
            dict(seed=11, shots=64, include_crosstalk=False),
            dict(seed=11, shots=64, scheduling="asap"),
        ):
            want = run_parallel(programs, device, **kwargs)
            with ExecutionService(max_workers=2, mode="process") as svc:
                got = svc.run_parallel(programs, device, **kwargs)
            assert_identical(got, want)

    def test_one_service_many_batches(self):
        rng = np.random.default_rng(21)
        device = ibm_toronto()
        with ExecutionService(max_workers=2, mode="process") as svc:
            for trial in range(3):
                programs = random_job(rng, max_programs=3)
                want = run_parallel(programs, device, shots=93, seed=trial)
                got = svc.run_parallel(programs, device, shots=93,
                                       seed=trial)
                assert_identical(got, want)
            assert svc.stats["batches"] == 3
            assert svc.stats["process_batches"] == 3
            assert svc.stats["chunks"] >= 3
            assert svc.stats["fallbacks"] == 0

    def test_validation_still_raises_in_parent(self):
        device = ibm_toronto()
        bad = QuantumCircuit(2, 2)
        bad.cx(0, 1)
        bad.measure_all()
        with ExecutionService(mode="process") as svc:
            with pytest.raises(ValueError, match="no such link"):
                svc.run_parallel([Program(bad, (0, 2))], device, shots=16)


class TestChooseRoute:
    """The measured decision table from the committed crossover run."""

    def test_tiny_batches_stay_serial_at_any_width(self):
        for width in (1, 7, 12):
            assert ExecutionService.choose_route(
                _SERIAL_MAX_BATCH, width, 4096, cores=8) == "serial"

    def test_single_core_never_routes_to_a_pool(self):
        assert ExecutionService.choose_route(64, 7, 4096,
                                             cores=1) == "serial"

    def test_small_cheap_batches_stay_serial(self):
        est = ExecutionService.estimate_batch_ms(3, 1, 0)
        assert est < _THREAD_MIN_BATCH_MS
        assert ExecutionService.choose_route(3, 1, 0, cores=8) == "serial"

    def test_moderate_batches_take_threads(self):
        est = ExecutionService.estimate_batch_ms(4, 3, 4096)
        assert _THREAD_MIN_BATCH_MS <= est < _PROCESS_MIN_BATCH_MS
        assert ExecutionService.choose_route(4, 3, 4096,
                                             cores=8) == "thread"

    def test_heavy_batches_take_the_process_pool(self):
        est = ExecutionService.estimate_batch_ms(16, 5, 4096)
        assert est >= _PROCESS_MIN_BATCH_MS
        assert ExecutionService.choose_route(16, 5, 4096,
                                             cores=8) == "process"

    def test_estimate_grows_with_width_batch_and_shots(self):
        est = ExecutionService.estimate_batch_ms
        assert est(4, 5, 1024) < est(4, 6, 1024) < est(4, 9, 1024)
        assert est(4, 5, 1024) < est(8, 5, 1024)
        assert est(4, 5, 0) < est(4, 5, 65536)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            ExecutionService(mode="fleet")


class _BrokenSubmitPool:
    def submit(self, *args, **kwargs):
        raise BrokenExecutor("process pool is terminated")

    def shutdown(self, wait=True):
        pass


class _DyingWorkerPool:
    def submit(self, *args, **kwargs):
        fut = Future()
        fut.set_exception(BrokenExecutor("worker died"))
        return fut

    def shutdown(self, wait=True):
        pass


class TestPoolFallbacks:
    """Pool health must never fail a batch — and never change a bit."""

    def setup_method(self):
        rng = np.random.default_rng(5)
        self.device = ibm_toronto()
        self.programs = random_job(rng, max_programs=4)
        self.want = run_parallel(self.programs, self.device, shots=77,
                                 seed=13)

    def test_broken_submit_falls_back_inline(self):
        svc = ExecutionService(max_workers=2, mode="process")
        svc._process_pool = _BrokenSubmitPool()
        got = svc.run_parallel(self.programs, self.device, shots=77,
                               seed=13)
        assert_identical(got, self.want)
        assert svc.stats["fallbacks"] == len(self.programs)
        # The dead pool was dropped: the next process-route batch builds
        # a fresh one instead of falling back forever.
        assert svc._process_pool is None
        svc.shutdown()

    def test_mid_chunk_worker_death_falls_back_inline(self):
        svc = ExecutionService(max_workers=2, mode="process")
        svc._process_pool = _DyingWorkerPool()
        got = svc.run_parallel(self.programs, self.device, shots=77,
                               seed=13)
        assert_identical(got, self.want)
        assert svc.stats["fallbacks"] == len(self.programs)
        svc.shutdown()

    def test_shut_down_thread_pool_falls_back_inline(self):
        svc = ExecutionService(max_workers=2, mode="thread")
        dead = ThreadPoolExecutor(max_workers=1)
        dead.shutdown()
        svc._thread_pool = dead
        got = svc.run_parallel(self.programs, self.device, shots=77,
                               seed=13)
        assert_identical(got, self.want)
        assert svc.stats["fallbacks"] == len(self.programs)
        svc.shutdown()

    def test_program_errors_still_propagate(self):
        # A failing *simulation* is a real error, not pool health: the
        # fallback must not swallow it (only BrokenExecutor degrades).
        class _FailingChunkPool:
            def submit(self, *args, **kwargs):
                fut = Future()
                fut.set_exception(RuntimeError("simulation exploded"))
                return fut

            def shutdown(self, wait=True):
                pass

        svc = ExecutionService(max_workers=2, mode="process")
        svc._process_pool = _FailingChunkPool()
        with pytest.raises(RuntimeError, match="simulation exploded"):
            svc.run_parallel(self.programs, self.device, shots=8, seed=1)
        assert svc.stats["fallbacks"] == 0
        svc.shutdown()


class TestExecutorWiring:
    """run_batch / execute_allocation with a service are bit-identical."""

    def test_execute_allocation_with_service(self):
        device = ibm_toronto()
        circuits = [workload(n).circuit() for n in ("adder", "bell", "lin")]
        allocation = qucp_allocate(circuits, device)
        want = execute_allocation(allocation, shots=64, seed=5)
        with ExecutionService(max_workers=2, mode="process") as svc:
            got = execute_allocation(allocation, shots=64, seed=5,
                                     execution_service=svc)
        assert svc.stats["batches"] == 1
        for g, w in zip(got, want):
            assert g.result.counts == w.result.counts
            assert g.result.probabilities == w.result.probabilities

    def test_run_batch_with_service(self):
        device = ibm_toronto()
        circuits = [workload(n).circuit() for n in ("adder", "bell")]
        jobs = [qucp_allocate(circuits, device),
                qucp_allocate(circuits[::-1], device)]
        want = run_batch(jobs, seed=17)
        with ExecutionService(max_workers=2, mode="process") as svc:
            got = run_batch(jobs, seed=17, execution_service=svc)
        assert svc.stats["batches"] == len(jobs)
        for gj, wj in zip(got, want):
            for g, w in zip(gj, wj):
                assert g.result.counts == w.result.counts

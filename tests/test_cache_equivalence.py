"""Equivalence-class cache keys: qubit-relabel canonicalization, the
randomized proof that reused artifacts are execution-identical, and the
provider-level persistent-store integration (cache_path, RunMetadata
counters)."""

import dataclasses

import numpy as np
import pytest

from repro.cache import (
    canonical_form,
    circuit_key,
    invert_relabel,
    remap_layout,
    transpile_key,
)
from repro.circuits import QuantumCircuit, random_circuit
from repro.core import ExecutionCache, qucp_allocate
from repro.core.executor import _default_transpiler
from repro.service import QuantumProvider
from repro.sim import ideal_probabilities
from repro.transpiler import Layout
from repro.workloads import workload


def _measured(circuit):
    out = circuit.copy()
    if not any(i.name == "measure" for i in out):
        out.num_clbits = max(out.num_clbits, out.num_qubits)
        out.measure_all()
    return out


def _permuted(circuit, perm):
    """*circuit* with logical qubit ``q`` renamed to ``perm[q]``
    (clbits untouched, so the measured distribution is preserved)."""
    return circuit.remapped({q: perm[q]
                             for q in range(circuit.num_qubits)})


class TestCanonicalForm:
    def test_first_appearance_order_is_identity_for_ordered_circuit(self):
        qc = QuantumCircuit(3, 3).h(0).cx(0, 1).cx(1, 2).measure_all()
        form = canonical_form(qc)
        assert form.relabel is None
        assert form.key == form.exact_key
        assert form.exact_key == circuit_key(qc)

    def test_permuted_twins_share_one_canonical_form(self):
        qc = QuantumCircuit(3, 3).h(0).cx(0, 1).cx(1, 2).measure_all()
        twin = _permuted(qc, (2, 0, 1))
        f0, f1 = canonical_form(qc), canonical_form(twin)
        assert f0.exact_key != f1.exact_key
        assert f0.key == f1.key
        assert f0.invariants == f1.invariants
        assert f1.relabel is not None

    def test_different_circuits_stay_distinct(self):
        a = QuantumCircuit(2, 2).h(0).cx(0, 1).measure_all()
        b = QuantumCircuit(2, 2).h(0).cz(0, 1).measure_all()
        assert canonical_form(a).key != canonical_form(b).key

    def test_unused_qubits_keep_relative_order(self):
        # Only qubit 2 is touched; 0 and 1 trail in original order.
        qc = QuantumCircuit(3, 1).h(2).measure(2, 0)
        form = canonical_form(qc)
        assert form.relabel == (1, 2, 0)
        assert invert_relabel(form.relabel) == (2, 0, 1)

    def test_relabel_roundtrip_on_layouts(self):
        layout = Layout({0: 5, 1: 9, 2: 3})
        relabel = (2, 0, 1)
        there = remap_layout(layout, relabel)
        back = remap_layout(there, invert_relabel(relabel))
        assert back.as_dict() == layout.as_dict()

    def test_randomized_canonical_key_is_permutation_invariant(self):
        rng = np.random.default_rng(11)
        for seed in range(8):
            qc = _measured(random_circuit(4, 8, seed=seed))
            perm = tuple(int(p) for p in rng.permutation(qc.num_qubits))
            twin = _permuted(qc, perm)
            assert canonical_form(qc).key == canonical_form(twin).key


class TestEquivalenceReuse:
    """Reusing a representative's artifact for a relabeled twin must be
    invisible in execution: identical noiseless distributions, layouts
    consistently remapped."""

    def _alloc_pair(self, device, circuit, perm):
        base = qucp_allocate([circuit], device).allocations[0]
        twin = dataclasses.replace(base, circuit=_permuted(
            circuit, perm))
        return base, twin

    def test_twin_hits_equivalence_tier(self, toronto):
        cache = ExecutionCache()
        qc = _measured(random_circuit(3, 8, seed=2))
        base, twin = self._alloc_pair(toronto, qc, (1, 2, 0))
        cache.transpile(base.circuit, toronto, base, _default_transpiler)
        assert cache.transpile_misses == 1
        cache.transpile(twin.circuit, toronto, twin, _default_transpiler)
        assert cache.transpile_misses == 1
        assert cache.stats["equivalence_hits"] == 1

    def test_index_sensitive_hooks_never_alias_classes(self, toronto):
        from repro.core import index_sensitive_transpiler

        @index_sensitive_transpiler
        def hook(circuit, device, allocation):
            return _default_transpiler(circuit, device, allocation)

        qc = _measured(random_circuit(3, 8, seed=3))
        base, twin = self._alloc_pair(toronto, qc, (1, 2, 0))
        key = transpile_key(base.circuit, toronto, base, hook)
        assert key.canonical is None and key.digest is None
        cache = ExecutionCache()
        cache.transpile(base.circuit, toronto, base, hook)
        cache.transpile(twin.circuit, toronto, twin, hook)
        assert cache.stats["equivalence_hits"] == 0
        assert cache.transpile_misses == 2

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_reuse_is_execution_identical(self, toronto, seed):
        rng = np.random.default_rng(100 + seed)
        qc = _measured(random_circuit(3, 10, seed=seed))
        perm = tuple(int(p) for p in rng.permutation(qc.num_qubits))
        base, twin = self._alloc_pair(toronto, qc, perm)

        cache = ExecutionCache()
        rep = cache.transpile(base.circuit, toronto, base,
                              _default_transpiler)
        reused = cache.transpile(twin.circuit, toronto, twin,
                                 _default_transpiler)
        fresh = _default_transpiler(twin.circuit, toronto, twin)

        # The physical circuit is label-invariant: reuse hands back the
        # representative's compiled artifact verbatim.
        assert circuit_key(reused.circuit) == circuit_key(rep.circuit)
        # Execution identity: the reused artifact's noiseless output
        # equals both an independent compile of the twin and the twin's
        # logical ideal.  (A fresh compile may break layout ties
        # differently, so circuits are not compared gate-for-gate.)
        logical = ideal_probabilities(twin.circuit)
        reused_probs = ideal_probabilities(reused.circuit)
        fresh_probs = ideal_probabilities(fresh.circuit)
        assert reused_probs == pytest.approx(logical, abs=1e-9)
        assert fresh_probs == pytest.approx(logical, abs=1e-9)
        # Layouts arrive in each requester's own labeling; mapping both
        # through their respective relabelings lands on one canonical
        # layout (same physical qubits, class-consistent logical names).
        base_form = canonical_form(base.circuit)
        twin_form = canonical_form(twin.circuit)
        canon_from_twin = remap_layout(reused.initial_layout,
                                       twin_form.relabel)
        canon_from_base = remap_layout(rep.initial_layout,
                                       base_form.relabel)
        assert canon_from_twin.as_dict() == canon_from_base.as_dict()

    def test_persistent_reuse_matches_in_memory_reuse(self, toronto,
                                                      tmp_path):
        path = str(tmp_path / "store.db")
        qc = _measured(random_circuit(3, 8, seed=5))
        base, twin = self._alloc_pair(toronto, qc, (2, 0, 1))
        warm = ExecutionCache(store_path=path)
        warm.transpile(base.circuit, toronto, base, _default_transpiler)
        # Cold process simulation: new cache, same store, twin request.
        cold = ExecutionCache(store_path=path)
        served = cold.transpile(twin.circuit, toronto, twin,
                                _default_transpiler)
        assert cold.stats["promotions"] == 1
        assert ideal_probabilities(served.circuit) == pytest.approx(
            ideal_probabilities(twin.circuit), abs=1e-9)

    def test_ideal_distributions_shared_across_class(self, toronto):
        cache = ExecutionCache()
        qc = _measured(random_circuit(3, 8, seed=6))
        twin = _permuted(qc, (1, 2, 0))
        first = cache.ideal(qc)
        second = cache.ideal(twin)
        assert cache.ideal_misses == 1
        assert cache.ideal_hits == 1
        assert second == pytest.approx(first, abs=1e-12)
        assert second == pytest.approx(ideal_probabilities(twin),
                                       abs=1e-9)


class TestProviderPersistentStore:
    def test_cache_path_attaches_store(self, toronto, tmp_path):
        path = str(tmp_path / "provider.db")
        with QuantumProvider(cache_path=path) as provider:
            assert provider.cache_path == path
            assert provider.cache.persistent is not None

    def test_cache_path_env_default(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.db")
        monkeypatch.setenv("REPRO_CACHE_PATH", path)
        with QuantumProvider() as provider:
            assert provider.cache_path == path
        monkeypatch.delenv("REPRO_CACHE_PATH")
        with QuantumProvider() as provider:
            assert provider.cache_path is None

    def test_warm_store_run_and_metadata_counters(self, tmp_path):
        path = str(tmp_path / "provider.db")
        circuits = [workload("lin").circuit(),
                    workload("adder").circuit()]
        with QuantumProvider(cache_path=path) as warm:
            backend = warm.simulator("ibm_toronto")
            first = backend.run(circuits, shots=0).result()
            assert first.metadata.cache_promotions == 0
            assert warm.cache_stats()["persistent_writes"] >= 2
        # A brand-new provider (fresh in-memory caches, same store)
        # serves every compile from the store: no submissions reach a
        # worker, and the promotions surface in the job metadata.
        with QuantumProvider(cache_path=path) as cold:
            backend = cold.simulator("ibm_toronto")
            result = backend.run(circuits, shots=0).result()
            stats = cold.cache_stats()
            assert stats["submitted"] == 0
            assert stats["promotions"] >= 2
            assert result.metadata.cache_promotions >= 2
            assert result.metadata.transpile_misses == 0
            payload = result.to_dict()
            assert payload["metadata"]["cache_promotions"] >= 2
            assert "cache_evictions" in payload["metadata"]


class TestDynamicCircuitKeys:
    """Control-flow circuits participate in the equivalence cache: keys
    hash nested bodies recursively and canonicalization sees through
    qubit relabels of dynamic circuits."""

    def _teleport(self):
        from repro.workloads import dynamic_circuit

        return dynamic_circuit("teleportation")

    def test_fresh_builds_share_keys(self):
        # Two independent builder calls produce distinct objects whose
        # structural keys must still collide (cache hits across jobs).
        assert circuit_key(self._teleport()) == circuit_key(
            self._teleport())

    def test_fresh_loop_parameter_builds_share_keys(self):
        from repro.circuits import Parameter

        def build():
            theta = Parameter("theta")  # fresh object every call
            body = QuantumCircuit(1, 1)
            body.rz(theta, 0)
            qc = QuantumCircuit(1, 1)
            qc.for_loop(range(3), body, loop_parameter=theta)
            qc.measure(0, 0)
            return qc

        assert circuit_key(build()) == circuit_key(build())

    def test_permuted_dynamic_twins_share_canonical_form(self):
        qc = self._teleport()
        twin = qc.remapped({0: 2, 1: 0, 2: 1})
        f0, f1 = canonical_form(qc), canonical_form(twin)
        assert f0.exact_key != f1.exact_key
        assert f0.key == f1.key

    def test_indexset_distinguishes_keys(self):
        def loop(reps):
            body = QuantumCircuit(1, 1)
            body.x(0)
            qc = QuantumCircuit(1, 1)
            qc.for_loop(range(reps), body)
            qc.measure(0, 0)
            return qc

        assert circuit_key(loop(3)) != circuit_key(loop(4))

    def test_condition_value_distinguishes_keys(self):
        def branch(value):
            qc = QuantumCircuit(2, 2)
            qc.h(0)
            qc.measure(0, 0)
            fix = QuantumCircuit(2, 2)
            fix.x(1)
            qc.if_test(([0], value), fix)
            qc.measure(1, 1)
            return qc

        assert circuit_key(branch(0)) != circuit_key(branch(1))

    def test_while_cap_distinguishes_keys(self):
        def rus(cap):
            qc = QuantumCircuit(1, 1)
            qc.h(0)
            qc.measure(0, 0)
            retry = QuantumCircuit(1, 1)
            retry.reset(0)
            retry.h(0)
            retry.measure(0, 0)
            qc.while_loop(([0], 0), retry, max_iterations=cap)
            return qc

        assert circuit_key(rus(4)) != circuit_key(rus(5))

    def test_body_contents_reach_the_key(self):
        def branch(gate):
            qc = QuantumCircuit(2, 2)
            qc.h(0)
            qc.measure(0, 0)
            fix = QuantumCircuit(2, 2)
            fix._add(gate, [1])
            qc.if_test(([0], 1), fix)
            qc.measure(1, 1)
            return qc

        assert circuit_key(branch("x")) != circuit_key(branch("z"))

    def test_static_keys_unaffected_by_dynamic_support(self):
        # Historical static-entry form is preserved: a plain circuit's
        # key contains no control-flow payload markers.
        qc = QuantumCircuit(2, 2).h(0).cx(0, 1).measure_all()
        assert circuit_key(qc) == circuit_key(qc.copy())

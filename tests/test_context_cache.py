"""Context-cache equivalence: transpiling through the shared
:class:`DeviceContext` layer must be bit-identical to the uncached seed
behaviour, caches must count hits/misses, and mutated calibrations must
invalidate.
"""

import math

import networkx as nx
import pytest

from repro.circuits import QuantumCircuit, qft_circuit, random_circuit
from repro.core import CompileService, ExecutionCache, get_allocator
from repro.core.executor import _default_transpiler, execute_allocation
from repro.hardware import CouplingMap, ibm_melbourne, ibm_toronto, linear_device
from repro.transpiler import (
    DeviceContext,
    context_cache_stats,
    decompose_to_basis,
    device_context,
    edge_reliability_weight,
    noise_aware_layout,
    reset_context_cache,
    sabre_route,
    transpile,
    transpile_for_partition,
)
from repro.transpiler.context import UNREACHABLE


def _measured(circuit: QuantumCircuit) -> QuantumCircuit:
    out = circuit.copy()
    if not any(i.name == "measure" for i in out):
        out.measure_all()
    return out


def _seed_reliability_distance(coupling, calibration):
    """The seed implementation's per-call Dijkstra, reproduced inline
    (independent of the context module) as the equivalence oracle."""
    weighted = nx.Graph()
    weighted.add_nodes_from(range(coupling.num_qubits))
    for a, b in coupling.edges:
        if calibration is None:
            w = 1.0
        else:
            err = min(calibration.cx_error(a, b), 0.999)
            w = -math.log(1.0 - err) + 0.01
        weighted.add_edge(a, b, weight=w)
    return {
        src: dists
        for src, dists in nx.all_pairs_dijkstra_path_length(
            weighted, weight="weight")
    }


class TestContextTables:
    def test_reliability_tables_match_seed_computation(self):
        dev = ibm_toronto()
        ctx = DeviceContext(dev.coupling, dev.calibration)
        oracle = _seed_reliability_distance(dev.coupling, dev.calibration)
        assert ctx.reliability_distance == oracle
        mat = ctx.reliability_matrix
        n = dev.num_qubits
        for src in range(n):
            for dst in range(n):
                expected = oracle[src].get(dst, UNREACHABLE)
                assert mat[src, dst] == expected  # bit-identical floats

    def test_edge_weight_single_source_of_truth(self):
        dev = ibm_melbourne()
        ctx = DeviceContext(dev.coupling, dev.calibration)
        for (a, b), w in ctx.edge_weights.items():
            err = min(dev.calibration.cx_error(a, b), 0.999)
            assert w == -math.log(1.0 - err) + 0.01
        assert edge_reliability_weight(None) == 1.0

    def test_hop_matrix_matches_coupling_distance(self):
        dev = ibm_melbourne()
        ctx = DeviceContext(dev.coupling, dev.calibration)
        for a in range(dev.num_qubits):
            for b in range(dev.num_qubits):
                assert ctx.hop_matrix[a, b] == dev.coupling.distance(a, b)

    def test_tables_are_lazy_and_cached(self):
        dev = ibm_melbourne()
        ctx = DeviceContext(dev.coupling, dev.calibration)
        assert ctx.stats["tables_built"] == 0
        first = ctx.reliability_distance
        built = ctx.stats["tables_built"]
        assert built > 0
        assert ctx.reliability_distance is first  # no rebuild
        assert ctx.stats["tables_built"] == built


class TestTranspileEquivalence:
    @pytest.mark.parametrize("router", ["basic", "sabre"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_shared_context_is_bit_identical(self, router, seed):
        """Warm shared context == per-call fresh context, full device."""
        dev = ibm_toronto()
        shared = DeviceContext(dev.coupling, dev.calibration)
        for i in range(3):
            circuit = _measured(
                random_circuit(5, 10, seed=seed * 10 + i))
            cold = transpile(
                circuit, dev.coupling, dev.calibration, seed=seed,
                router=router,
                context=DeviceContext(dev.coupling, dev.calibration))
            warm = transpile(circuit, dev.coupling, dev.calibration,
                             seed=seed, router=router, context=shared)
            via_registry = transpile(circuit, dev.coupling,
                                     dev.calibration, seed=seed,
                                     router=router)
            assert warm.circuit == cold.circuit
            assert via_registry.circuit == cold.circuit
            assert warm.initial_layout == cold.initial_layout
            assert warm.final_layout == cold.final_layout
            assert warm.num_swaps == cold.num_swaps

    @pytest.mark.parametrize("seed", [0, 3])
    def test_partition_path_bit_identical_and_memoized(self, seed):
        dev = ibm_toronto()
        circuit = _measured(qft_circuit(4))
        partition = get_allocator("qucp").best_placement(
            circuit, dev).partition
        ctx = DeviceContext(dev.coupling, dev.calibration)
        first = transpile_for_partition(circuit, dev, partition,
                                        seed=seed, context=ctx)
        assert ctx.stats["partition_misses"] == 1
        again = transpile_for_partition(circuit, dev, partition,
                                        seed=seed, context=ctx)
        assert ctx.stats["partition_hits"] == 1
        fresh = transpile_for_partition(
            circuit, dev, partition, seed=seed,
            context=DeviceContext(dev.coupling, dev.calibration))
        assert again.circuit == first.circuit == fresh.circuit
        assert again.final_layout == first.final_layout
        assert again.num_swaps == first.num_swaps

    def test_sabre_vectorized_matches_scalar_reference(self):
        """The numpy swap scoring reproduces the seed scalar loop
        bit-for-bit across devices, circuits, and seeds."""
        for dev in (ibm_toronto(), linear_device(6, seed=2),
                    ibm_melbourne()):
            for seed in range(4):
                circuit = random_circuit(
                    min(6, dev.num_qubits), 14, seed=seed)
                basis = decompose_to_basis(circuit)
                layout = noise_aware_layout(
                    basis, dev.coupling, dev.calibration, seed=seed)
                vec = sabre_route(basis, dev.coupling, layout,
                                  dev.calibration,
                                  score_mode="vectorized")
                ref = sabre_route(basis, dev.coupling, layout,
                                  dev.calibration,
                                  score_mode="reference")
                assert vec.circuit == ref.circuit
                assert vec.final_layout == ref.final_layout
                assert vec.num_swaps == ref.num_swaps

    def test_unknown_score_mode_rejected(self):
        dev = linear_device(4, seed=0)
        basis = decompose_to_basis(qft_circuit(3))
        layout = noise_aware_layout(basis, dev.coupling, dev.calibration)
        with pytest.raises(ValueError, match="score_mode"):
            sabre_route(basis, dev.coupling, layout, dev.calibration,
                        score_mode="fast")


class TestRegistry:
    def test_registry_hit_miss_counters(self):
        reset_context_cache()
        dev = linear_device(5, seed=4)
        ctx1 = device_context(dev.coupling, dev.calibration)
        ctx2 = device_context(dev.coupling, dev.calibration)
        assert ctx1 is ctx2
        stats = context_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1

    def test_value_keyed_sharing_across_objects(self):
        """Equal coupling/calibration values share one context even for
        distinct objects (the fleet's twin-device case)."""
        reset_context_cache()
        a = linear_device(5, seed=4)
        b = linear_device(5, seed=4)
        assert a.calibration is not b.calibration
        assert device_context(a.coupling, a.calibration) \
            is device_context(b.coupling, b.calibration)

    def test_mutated_calibration_invalidates(self):
        reset_context_cache()
        dev = linear_device(5, seed=4)
        ctx1 = device_context(dev.coupling, dev.calibration)
        edge = dev.coupling.edges[0]
        w_before = ctx1.edge_weights[edge]
        old = dev.calibration.twoq_error[edge]
        try:
            dev.calibration.twoq_error[edge] = min(old * 5, 0.14)
            ctx2 = device_context(dev.coupling, dev.calibration)
            assert ctx2 is not ctx1
            assert ctx2.edge_weights[edge] != w_before
            assert ctx2.edge_weights[edge] == edge_reliability_weight(
                dev.calibration.twoq_error[edge])
            # The stale context still serves its frozen snapshot.
            assert ctx1.edge_weights[edge] == w_before
        finally:
            dev.calibration.twoq_error[edge] = old

    def test_lazy_tables_pinned_to_registration_snapshot(self):
        """Tables built *after* an in-place mutation must still reflect
        the values the context was fingerprinted under."""
        reset_context_cache()
        dev = linear_device(5, seed=4)
        edge = dev.coupling.edges[0]
        old = dev.calibration.twoq_error[edge]
        ctx = device_context(dev.coupling, dev.calibration)
        assert ctx.stats["tables_built"] == 0  # nothing materialized yet
        try:
            dev.calibration.twoq_error[edge] = min(old * 5, 0.14)
            assert ctx.edge_weights[edge] == edge_reliability_weight(old)
        finally:
            dev.calibration.twoq_error[edge] = old

    def test_none_calibration_contexts(self):
        reset_context_cache()
        cm = CouplingMap(4, [(0, 1), (1, 2), (2, 3)])
        ctx = device_context(cm, None)
        assert all(w == 1.0 for w in ctx.edge_weights.values())
        assert ctx.reliability_distance[0][3] == 3.0


class TestCouplingMapLaziness:
    def test_distance_table_lazy(self):
        cm = CouplingMap(6, [(i, i + 1) for i in range(5)])
        assert cm._dist_cache is None
        assert cm.distance(0, 5) == 5
        assert cm._dist_cache is not None

    def test_one_hop_caches_match_direct_scan(self):
        dev = ibm_melbourne()
        cm = dev.coupling
        pairs = cm.all_one_hop_edge_pairs()
        assert pairs is cm.all_one_hop_edge_pairs()  # cached object
        expected = tuple(
            (e1, e2)
            for i, e1 in enumerate(cm.edges)
            for e2 in cm.edges[i + 1:]
            if cm.pair_distance(e1, e2) == 1
        )
        assert pairs == expected
        for edge in cm.edges:
            direct = tuple(
                other for other in cm.edges
                if other != edge and cm.pair_distance(edge, other) == 1
            )
            assert cm.one_hop_pairs(edge) == direct

    def test_one_hop_pairs_non_link_query(self):
        cm = CouplingMap(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        # (0, 2) is not a device link; the historical scan semantics
        # still apply: only (3, 4) is disjoint from it at hop distance 1.
        assert cm.one_hop_pairs((0, 2)) == ((3, 4),)


class TestCompileService:
    @pytest.fixture()
    def job(self):
        dev = ibm_toronto()
        circuits = [_measured(qft_circuit(3)),
                    _measured(random_circuit(4, 8, seed=1))]
        return get_allocator("qucp").allocate(circuits, dev)

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_service_matches_direct_execution(self, job, mode):
        direct = execute_allocation(job, shots=256, seed=5)
        with CompileService(max_workers=2, mode=mode) as svc:
            via = execute_allocation(job, shots=256, seed=5,
                                     compile_service=svc)
        assert len(via) == len(direct)
        for a, b in zip(via, direct):
            assert a.transpiled.circuit == b.transpiled.circuit
            assert a.result.probabilities == b.result.probabilities

    def test_service_cache_short_circuit_and_counters(self, job):
        with CompileService(mode="serial") as svc:
            svc.compile_allocation(job)
            assert svc.stats["submitted"] == 2
            assert svc.cache.transpile_misses == 2
            svc.compile_allocation(job)
            assert svc.stats["submitted"] == 2  # all cache hits
            assert svc.stats["short_circuits"] == 2
            assert svc.cache.transpile_hits == 2

    def test_results_do_not_alias(self, job):
        with CompileService(mode="serial") as svc:
            first = svc.compile_allocation(job)
            second = svc.compile_allocation(job)
        assert first[0].circuit == second[0].circuit
        assert first[0].circuit is not second[0].circuit
        assert first[0].final_layout is not second[0].final_layout

    def test_mismatched_cache_rejected(self, job):
        with CompileService(mode="serial") as svc:
            with pytest.raises(ValueError, match="cache"):
                execute_allocation(job, shots=64,
                                   cache=ExecutionCache(),
                                   compile_service=svc)

    def test_compile_errors_propagate(self, job):
        def broken(circuit, device, allocation):
            raise RuntimeError("compiler exploded")

        with CompileService(mode="serial") as svc:
            with pytest.raises(RuntimeError, match="compiler exploded"):
                svc.transpile(job.allocations[0].circuit, job.device,
                              job.allocations[0], broken)

    def test_default_transpiler_key_stable(self, job):
        """The default hook is module-level, so its cache key is stable
        across calls (id() of a fresh lambda would never hit)."""
        cache = ExecutionCache()
        alloc = job.allocations[0]
        k1 = cache.transpile_key(alloc.circuit, job.device, alloc,
                                 _default_transpiler)
        k2 = cache.transpile_key(alloc.circuit, job.device, alloc,
                                 _default_transpiler)
        assert k1 == k2 and k1 is not None

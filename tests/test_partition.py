"""Unit tests for partition candidate generation and crosstalk suspects."""

import pytest

from repro.core import crosstalk_suspect_pairs, grow_partition_candidates


class TestCandidates:
    def test_candidates_are_connected(self, toronto):
        for cand in grow_partition_candidates(
                4, toronto.coupling, toronto.calibration):
            assert toronto.coupling.is_connected_subset(cand.qubits)

    def test_candidates_have_requested_size(self, toronto):
        for cand in grow_partition_candidates(
                5, toronto.coupling, toronto.calibration):
            assert len(cand) == 5

    def test_candidates_avoid_allocated(self, toronto):
        allocated = (0, 1, 2, 3, 4)
        for cand in grow_partition_candidates(
                3, toronto.coupling, toronto.calibration,
                allocated=allocated):
            assert not set(cand.qubits) & set(allocated)

    def test_no_duplicates(self, toronto):
        cands = grow_partition_candidates(
            4, toronto.coupling, toronto.calibration)
        regions = [c.qubits for c in cands]
        assert len(regions) == len(set(regions))

    def test_exhausted_device_returns_empty(self, line5):
        cands = grow_partition_candidates(
            3, line5.coupling, line5.calibration,
            allocated=(0, 1, 2, 3))
        assert cands == []

    def test_full_device_single_candidate(self, line5):
        cands = grow_partition_candidates(
            5, line5.coupling, line5.calibration)
        assert len(cands) == 1
        assert cands[0].qubits == (0, 1, 2, 3, 4)


class TestCrosstalkSuspects:
    def test_no_allocations_no_suspects(self, toronto):
        assert crosstalk_suspect_pairs((0, 1, 2), toronto.coupling,
                                       []) == ()

    def test_adjacent_partition_flags_links(self, toronto):
        # (0,1) and (4,7) are one hop apart on Toronto (via 1-4).
        suspects = crosstalk_suspect_pairs(
            (0, 1), toronto.coupling, [(4, 7)])
        assert (0, 1) in suspects

    def test_distant_partition_no_suspects(self, manhattan):
        suspects = crosstalk_suspect_pairs(
            (0, 1), manhattan.coupling, [(63, 64)])
        assert suspects == ()

    def test_suspects_are_internal_links(self, toronto):
        suspects = crosstalk_suspect_pairs(
            (0, 1, 2, 3), toronto.coupling, [(4, 7), (7, 10)])
        internal = set(toronto.coupling.subgraph_edges((0, 1, 2, 3)))
        assert set(suspects) <= internal

"""Shared fixtures: devices are module-scoped because their calibration
generation and distance tables are deterministic and reusable."""

from __future__ import annotations

import pytest

from repro.hardware import ibm_manhattan, ibm_melbourne, ibm_toronto, linear_device


@pytest.fixture(scope="session")
def toronto():
    """IBM Q 27 Toronto (seeded synthetic calibration)."""
    return ibm_toronto()


@pytest.fixture(scope="session")
def manhattan():
    """IBM Q 65 Manhattan (seeded synthetic calibration)."""
    return ibm_manhattan()


@pytest.fixture(scope="session")
def melbourne():
    """IBM Q 16 Melbourne with the paper's Fig. 1 CX errors."""
    return ibm_melbourne()


@pytest.fixture(scope="session")
def line5():
    """A 5-qubit linear-chain test device."""
    return linear_device(5, seed=7)

"""Unit tests for the dynamical-decoupling pass and detuning noise."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.sim import NoiseModel, run_circuit, simulate_density_matrix
from repro.transpiler import insert_dd_sequences

X_DUR = 35.0
DURATIONS = {"x": X_DUR}


def _ramsey(idle_ns: float) -> QuantumCircuit:
    qc = QuantumCircuit(1, 1)
    qc.h(0)
    qc.delay(0, idle_ns)
    qc.h(0)
    qc.measure(0, 0)
    return qc


def _noise(detuning=2e-4, t1=200_000.0, oneq=3e-4) -> NoiseModel:
    return NoiseModel(
        t1={0: t1}, t2={0: 0.9 * t1}, detuning={0: detuning},
        oneq_error={0: oneq}, gate_duration=dict(DURATIONS),
    )


class TestDetuningNoise:
    def test_detuning_rotates_superposition(self):
        res = run_circuit(_ramsey(15_000.0), noise_model=_noise(),
                          shots=0)
        # Phase 2e-4 * 15000 = 3 rad: far from returning to |0>.
        assert res.probabilities.get("0", 0.0) < 0.2

    def test_no_detuning_no_rotation(self):
        res = run_circuit(_ramsey(15_000.0),
                          noise_model=_noise(detuning=0.0), shots=0)
        assert res.probabilities.get("0", 0.0) > 0.9

    def test_detuning_phase_is_linear_in_time(self):
        nm = NoiseModel(detuning={0: 1e-4})
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.delay(0, 10_000.0)
        rho = simulate_density_matrix(qc, nm)
        phase = np.angle(rho[1, 0])
        assert phase == pytest.approx(1.0, abs=1e-9)


class TestInsertDD:
    def test_replaces_long_delay(self):
        circuit = _ramsey(15_000.0)
        out = insert_dd_sequences(circuit, DURATIONS)
        ops = out.count_ops()
        assert ops["x"] == 2
        assert ops["delay"] == 3

    def test_short_delay_untouched(self):
        circuit = _ramsey(100.0)
        out = insert_dd_sequences(circuit, DURATIONS)
        assert out.count_ops().get("x", 0) == 0

    def test_duration_conserved(self):
        circuit = _ramsey(15_000.0)
        out = insert_dd_sequences(circuit, DURATIONS)
        total_delay = sum(
            inst.params[0] for inst in out if inst.name == "delay")
        total_x = sum(X_DUR for inst in out if inst.name == "x")
        assert total_delay + total_x == pytest.approx(15_000.0)

    def test_net_unitary_is_identity(self):
        from repro.sim import circuit_unitary

        qc = QuantumCircuit(1)
        qc.delay(0, 10_000.0)
        out = insert_dd_sequences(qc, DURATIONS)
        stripped = QuantumCircuit(1)
        for inst in out:
            if inst.name == "x":
                stripped.x(0)
        u = circuit_unitary(stripped)
        assert np.allclose(u, np.eye(2))

    def test_custom_threshold(self):
        circuit = _ramsey(500.0)
        out = insert_dd_sequences(circuit, DURATIONS, min_window=400.0)
        assert out.count_ops()["x"] == 2


class TestDDEfficacy:
    def test_dd_recovers_ramsey_fidelity(self):
        nm = _noise()
        circuit = _ramsey(15_000.0)
        plain = run_circuit(circuit, noise_model=nm, shots=0)
        decoupled = run_circuit(insert_dd_sequences(circuit, DURATIONS),
                                noise_model=nm, shots=0)
        assert decoupled.probabilities.get("0", 0.0) > 0.9
        assert (decoupled.probabilities.get("0", 0.0)
                > plain.probabilities.get("0", 0.0) + 0.5)

    def test_dd_costs_gates_when_no_detuning(self):
        """Without drift to echo, DD's X gates only add error."""
        nm = _noise(detuning=0.0, oneq=5e-3)
        circuit = _ramsey(15_000.0)
        plain = run_circuit(circuit, noise_model=nm, shots=0)
        decoupled = run_circuit(insert_dd_sequences(circuit, DURATIONS),
                                noise_model=nm, shots=0)
        assert (decoupled.probabilities.get("0", 0.0)
                <= plain.probabilities.get("0", 0.0) + 1e-9)


class TestMultiStrategyDD:
    def _window(self, idle_ns=15_000.0, num_qubits=1):
        qc = QuantumCircuit(num_qubits, num_qubits)
        for q in range(num_qubits):
            qc.h(q)
            qc.delay(q, idle_ns)
            qc.h(q)
            qc.measure(q, q)
        return qc

    def test_xy4_pulse_train(self):
        from repro.transpiler import insert_dd_sequences_multi

        out = insert_dd_sequences_multi(self._window(), DURATIONS,
                                        strategy="xy4")
        ops = out.count_ops()
        assert ops["x"] == 2 and ops["y"] == 2
        names = [i.name for i in out if i.name in ("x", "y")]
        assert names == ["x", "y", "x", "y"]

    def test_duration_conserved_per_strategy(self):
        from repro.transpiler import DD_STRATEGIES, insert_dd_sequences_multi

        for strategy in DD_STRATEGIES:
            out = insert_dd_sequences_multi(
                self._window(), {"x": X_DUR, "y": X_DUR},
                strategy=strategy)
            total = sum(i.params[0] for i in out if i.name == "delay")
            pulses = sum(X_DUR for i in out if i.name in ("x", "y"))
            assert total + pulses == pytest.approx(15_000.0), strategy

    def test_per_qubit_strategy_map(self):
        from repro.transpiler import insert_dd_sequences_multi

        out = insert_dd_sequences_multi(
            self._window(num_qubits=2), DURATIONS,
            strategy={0: "xx", 1: "xy4"})
        by_qubit = {0: [], 1: []}
        for inst in out:
            if inst.name in ("x", "y"):
                by_qubit[inst.qubits[0]].append(inst.name)
        assert by_qubit[0] == ["x", "x"]
        assert by_qubit[1] == ["x", "y", "x", "y"]

    def test_unknown_strategy_rejected(self):
        from repro.transpiler import insert_dd_sequences_multi

        with pytest.raises(ValueError, match="unknown DD strategy"):
            insert_dd_sequences_multi(self._window(), DURATIONS,
                                      strategy="udd")

    def test_stagger_offsets_color_coupled_qubits(self):
        from repro.hardware.topology import CouplingMap
        from repro.transpiler import stagger_offsets

        line = CouplingMap(4, [(0, 1), (1, 2), (2, 3)])
        offsets = stagger_offsets(line, 4)
        for a, b in ((0, 1), (1, 2), (2, 3)):
            assert offsets[a] != offsets[b]

    def test_stagger_shifts_coupled_trains(self):
        from repro.hardware.topology import CouplingMap
        from repro.transpiler import insert_dd_sequences_multi

        line = CouplingMap(2, [(0, 1)])
        out = insert_dd_sequences_multi(
            self._window(num_qubits=2), DURATIONS, strategy="xx",
            coupling=line)
        leading = {}
        for inst in out:
            q = inst.qubits[0]
            if inst.name == "delay" and q not in leading:
                leading[q] = float(inst.params[0])
        # Different colors -> different lead-in before the first pulse.
        assert leading[0] != leading[1]
        # Shift = one pulse duration for color 1.
        assert abs(leading[0] - leading[1]) == pytest.approx(X_DUR)

    def test_stagger_conserves_duration_and_echo(self):
        from repro.hardware.topology import CouplingMap
        from repro.transpiler import insert_dd_sequences_multi

        line = CouplingMap(2, [(0, 1)])
        nm = NoiseModel(t1={q: 200_000.0 for q in range(2)},
                        t2={q: 180_000.0 for q in range(2)},
                        detuning={q: 2e-4 for q in range(2)},
                        oneq_error={q: 3e-4 for q in range(2)},
                        gate_duration=dict(DURATIONS))
        circuit = self._window(num_qubits=2)
        decoupled = insert_dd_sequences_multi(circuit, DURATIONS,
                                              strategy="xy4",
                                              coupling=line)
        for q in range(2):
            total = sum(i.params[0] for i in decoupled
                        if i.name == "delay" and i.qubits[0] == q)
            pulses = sum(X_DUR for i in decoupled
                         if i.name in ("x", "y") and i.qubits[0] == q)
            assert total + pulses == pytest.approx(15_000.0)
        res = run_circuit(decoupled, noise_model=nm, shots=0)
        # The echo survives the stagger shift: both qubits refocus.
        assert res.probabilities.get("00", 0.0) > 0.85

    def test_short_windows_untouched(self):
        from repro.transpiler import insert_dd_sequences_multi

        out = insert_dd_sequences_multi(self._window(idle_ns=100.0),
                                        DURATIONS, strategy="xy4")
        assert out.count_ops().get("x", 0) == 0

    def test_control_flow_bodies_untouched(self):
        from repro.transpiler import insert_dd_sequences_multi

        qc = QuantumCircuit(1, 1)
        body = QuantumCircuit(1, 1)
        body.delay(0, 15_000.0)
        qc.h(0)
        qc.measure(0, 0)
        qc.if_test(([0], 1), body)
        out = insert_dd_sequences_multi(qc, DURATIONS)
        op = out.instructions[-1].gate
        assert [i.name for i in op.bodies[0]] == ["delay"]

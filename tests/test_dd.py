"""Unit tests for the dynamical-decoupling pass and detuning noise."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.sim import NoiseModel, run_circuit, simulate_density_matrix
from repro.transpiler import insert_dd_sequences

X_DUR = 35.0
DURATIONS = {"x": X_DUR}


def _ramsey(idle_ns: float) -> QuantumCircuit:
    qc = QuantumCircuit(1, 1)
    qc.h(0)
    qc.delay(0, idle_ns)
    qc.h(0)
    qc.measure(0, 0)
    return qc


def _noise(detuning=2e-4, t1=200_000.0, oneq=3e-4) -> NoiseModel:
    return NoiseModel(
        t1={0: t1}, t2={0: 0.9 * t1}, detuning={0: detuning},
        oneq_error={0: oneq}, gate_duration=dict(DURATIONS),
    )


class TestDetuningNoise:
    def test_detuning_rotates_superposition(self):
        res = run_circuit(_ramsey(15_000.0), noise_model=_noise(),
                          shots=0)
        # Phase 2e-4 * 15000 = 3 rad: far from returning to |0>.
        assert res.probabilities.get("0", 0.0) < 0.2

    def test_no_detuning_no_rotation(self):
        res = run_circuit(_ramsey(15_000.0),
                          noise_model=_noise(detuning=0.0), shots=0)
        assert res.probabilities.get("0", 0.0) > 0.9

    def test_detuning_phase_is_linear_in_time(self):
        nm = NoiseModel(detuning={0: 1e-4})
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.delay(0, 10_000.0)
        rho = simulate_density_matrix(qc, nm)
        phase = np.angle(rho[1, 0])
        assert phase == pytest.approx(1.0, abs=1e-9)


class TestInsertDD:
    def test_replaces_long_delay(self):
        circuit = _ramsey(15_000.0)
        out = insert_dd_sequences(circuit, DURATIONS)
        ops = out.count_ops()
        assert ops["x"] == 2
        assert ops["delay"] == 3

    def test_short_delay_untouched(self):
        circuit = _ramsey(100.0)
        out = insert_dd_sequences(circuit, DURATIONS)
        assert out.count_ops().get("x", 0) == 0

    def test_duration_conserved(self):
        circuit = _ramsey(15_000.0)
        out = insert_dd_sequences(circuit, DURATIONS)
        total_delay = sum(
            inst.params[0] for inst in out if inst.name == "delay")
        total_x = sum(X_DUR for inst in out if inst.name == "x")
        assert total_delay + total_x == pytest.approx(15_000.0)

    def test_net_unitary_is_identity(self):
        from repro.sim import circuit_unitary

        qc = QuantumCircuit(1)
        qc.delay(0, 10_000.0)
        out = insert_dd_sequences(qc, DURATIONS)
        stripped = QuantumCircuit(1)
        for inst in out:
            if inst.name == "x":
                stripped.x(0)
        u = circuit_unitary(stripped)
        assert np.allclose(u, np.eye(2))

    def test_custom_threshold(self):
        circuit = _ramsey(500.0)
        out = insert_dd_sequences(circuit, DURATIONS, min_window=400.0)
        assert out.count_ops()["x"] == 2


class TestDDEfficacy:
    def test_dd_recovers_ramsey_fidelity(self):
        nm = _noise()
        circuit = _ramsey(15_000.0)
        plain = run_circuit(circuit, noise_model=nm, shots=0)
        decoupled = run_circuit(insert_dd_sequences(circuit, DURATIONS),
                                noise_model=nm, shots=0)
        assert decoupled.probabilities.get("0", 0.0) > 0.9
        assert (decoupled.probabilities.get("0", 0.0)
                > plain.probabilities.get("0", 0.0) + 0.5)

    def test_dd_costs_gates_when_no_detuning(self):
        """Without drift to echo, DD's X gates only add error."""
        nm = _noise(detuning=0.0, oneq=5e-3)
        circuit = _ramsey(15_000.0)
        plain = run_circuit(circuit, noise_model=nm, shots=0)
        decoupled = run_circuit(insert_dd_sequences(circuit, DURATIONS),
                                noise_model=nm, shots=0)
        assert (decoupled.probabilities.get("0", 0.0)
                <= plain.probabilities.get("0", 0.0) + 1e-9)

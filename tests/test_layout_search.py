"""Cold-path compile optimizations: vectorized layout search vs the
scalar reference, structural cache-key dedup across queue indices, and
the compile service's auto/process-chunk routing."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, random_circuit
from repro.core import (
    AllocationResult,
    CloudScheduler,
    CompileService,
    ExecutionCache,
    ProgramAllocation,
    SubmittedProgram,
    get_allocator,
    index_sensitive_transpiler,
)
from repro.core.cna import cna_compile
from repro.core.executor import _default_transpiler
from repro.hardware import CouplingMap, ibm_toronto, linear_device
from repro.hardware.calibration import generate_calibration
from repro.transpiler import (
    DeviceContext,
    Layout,
    interaction_counts,
    layout_cost,
    noise_aware_layout,
    transpile_for_partition,
)
from repro.transpiler.mapping import (
    _EXHAUSTIVE_LIMIT,
    _greedy_layout,
    _permutation_table,
)


def _random_connected_coupling(n: int, rng) -> CouplingMap:
    """Random spanning tree plus a few chords."""
    edges = [(int(rng.integers(i)), i) for i in range(1, n)]
    for _ in range(int(rng.integers(0, n))):
        a, b = rng.choice(n, size=2, replace=False)
        if (min(a, b), max(a, b)) not in edges:
            edges.append((int(min(a, b)), int(max(a, b))))
    return CouplingMap(n, edges)


def _measured(circuit: QuantumCircuit) -> QuantumCircuit:
    out = circuit.copy()
    if not any(i.name == "measure" for i in out):
        out.measure_all()
    return out


def _cost_of(layout, circuit, ctx):
    inter = interaction_counts(circuit)
    measured = sorted({i.qubits[0] for i in circuit
                       if i.name == "measure"})
    return layout_cost(layout, inter, ctx.reliability_distance,
                       ctx.calibration, measured)


class TestVectorizedSearchEquivalence:
    @pytest.mark.parametrize("with_calibration", [True, False])
    def test_randomized_argmin_equivalence(self, with_calibration):
        """The vectorized search's layout costs exactly the reference
        scalar loop's best, over random devices and circuits."""
        for seed in range(20):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(4, _EXHAUSTIVE_LIMIT + 1))
            coupling = _random_connected_coupling(n, rng)
            calibration = (generate_calibration(coupling, seed=seed)
                           if with_calibration else None)
            k = int(rng.integers(2, n + 1))
            circuit = _measured(
                random_circuit(k, int(rng.integers(5, 15)), seed=seed))
            ctx = DeviceContext(coupling, calibration)
            vec = noise_aware_layout(circuit, coupling, calibration,
                                     context=ctx,
                                     search_mode="vectorized")
            ref = noise_aware_layout(circuit, coupling, calibration,
                                     context=ctx,
                                     search_mode="reference")
            # rel tolerance: UNREACHABLE (1e9) terms make absolute
            # last-ulp noise exceed tiny fixed epsilons.
            assert _cost_of(vec, circuit, ctx) == pytest.approx(
                _cost_of(ref, circuit, ctx), rel=1e-9, abs=1e-9)

    def test_no_interaction_circuit(self):
        """Measure-only circuits (no 2q gates) pick minimal readout."""
        dev = linear_device(5, seed=3)
        circuit = QuantumCircuit(3, name="meas")
        circuit.measure_all()
        ctx = DeviceContext(dev.coupling, dev.calibration)
        vec = noise_aware_layout(circuit, dev.coupling, dev.calibration,
                                 context=ctx, search_mode="vectorized")
        ref = noise_aware_layout(circuit, dev.coupling, dev.calibration,
                                 context=ctx, search_mode="reference")
        assert _cost_of(vec, circuit, ctx) == pytest.approx(
            _cost_of(ref, circuit, ctx), abs=1e-12)

    def test_exhaustive_limit_raised_to_seven(self):
        """7-qubit devices now search exhaustively (optimally), not
        greedily."""
        assert _EXHAUSTIVE_LIMIT == 7
        rng = np.random.default_rng(5)
        coupling = _random_connected_coupling(7, rng)
        calibration = generate_calibration(coupling, seed=5)
        circuit = _measured(random_circuit(5, 12, seed=5))
        ctx = DeviceContext(coupling, calibration)
        best = noise_aware_layout(circuit, coupling, calibration,
                                  context=ctx)
        greedy = _greedy_layout(circuit, coupling, calibration,
                                interaction_counts(circuit),
                                ctx.reliability_distance, seed=0)
        assert _cost_of(best, circuit, ctx) \
            <= _cost_of(greedy, circuit, ctx) + 1e-12

    @pytest.mark.parametrize("mode", ["vectorized", "reference"])
    def test_zero_qubit_circuit(self, mode):
        """The empty circuit maps to the empty layout in both engines
        (the scalar loop's single empty permutation)."""
        dev = linear_device(4, seed=0)
        layout = noise_aware_layout(QuantumCircuit(0), dev.coupling,
                                    dev.calibration, search_mode=mode)
        assert len(layout) == 0

    def test_unknown_search_mode_rejected(self):
        dev = linear_device(4, seed=0)
        circuit = _measured(random_circuit(3, 5, seed=0))
        with pytest.raises(ValueError, match="search_mode"):
            noise_aware_layout(circuit, dev.coupling, dev.calibration,
                               search_mode="fast")

    def test_permutation_table_memoized_and_ordered(self):
        import itertools

        table = _permutation_table(5, 3)
        assert table is _permutation_table(5, 3)
        assert not table.flags.writeable
        expected = list(itertools.permutations(range(5), 3))
        assert [tuple(row) for row in table] == expected


class TestLayoutCostGuard:
    def test_measured_logical_absent_from_layout(self):
        """A measure-only logical beyond the placed set must not
        KeyError — it simply contributes nothing."""
        dev = linear_device(4, seed=1)
        ctx = DeviceContext(dev.coupling, dev.calibration)
        partial = Layout({0: 1, 1: 2})  # logical 2 unplaced
        cost = layout_cost(partial, {(0, 1): 2},
                           ctx.reliability_distance, dev.calibration,
                           measured_logicals=[0, 2])
        placed_only = layout_cost(partial, {(0, 1): 2},
                                  ctx.reliability_distance,
                                  dev.calibration,
                                  measured_logicals=[0])
        assert cost == placed_only

    def test_layout_contains(self):
        layout = Layout({0: 3, 1: 5})
        assert 0 in layout and 1 in layout
        assert 2 not in layout


class TestGreedyLayout:
    def test_deterministic_per_seed(self):
        dev = ibm_toronto()
        circuit = _measured(random_circuit(9, 20, seed=2))
        a = noise_aware_layout(circuit, dev.coupling, dev.calibration,
                               seed=3)
        b = noise_aware_layout(circuit, dev.coupling, dev.calibration,
                               seed=3)
        assert a == b

    def test_seed_breaks_ties(self):
        """With no calibration, quality degenerates to vertex degree —
        many equal-cost candidates; distinct seeds may choose distinct
        (equally good) placements, each deterministically."""
        coupling = CouplingMap(10, [(i, i + 1) for i in range(9)])
        circuit = _measured(random_circuit(4, 8, seed=0))
        layouts = {
            tuple(sorted(noise_aware_layout(
                circuit, coupling, None, seed=s).as_dict().items()))
            for s in range(8)
        }
        assert len(layouts) > 1  # the rng tie-break is really used


class TestStructuralCacheKey:
    def _alloc(self, circuit, partition, index):
        return ProgramAllocation(index, circuit, partition, 0.5)

    def test_dedup_across_queue_indices(self):
        """Identical programs at different allocation.index values share
        one default-key cache entry."""
        dev = ibm_toronto()
        cache = ExecutionCache()
        circuit = _measured(random_circuit(3, 6, seed=4))
        partition = get_allocator("qucp").best_placement(
            circuit, dev).partition
        for index in (0, 3, 17):
            cache.transpile(circuit, dev, self._alloc(
                circuit, partition, index), _default_transpiler)
        assert cache.transpile_misses == 1
        assert cache.transpile_hits == 2

    def test_index_sensitive_hook_does_not_dedup(self):
        dev = ibm_toronto()
        cache = ExecutionCache()
        circuit = _measured(random_circuit(3, 6, seed=4))
        partition = get_allocator("qucp").best_placement(
            circuit, dev).partition

        @index_sensitive_transpiler
        def hook(circ, device, alloc):
            return transpile_for_partition(circ, device, alloc.partition)

        k0 = cache.transpile_key(circuit, dev,
                                 self._alloc(circuit, partition, 0), hook)
        k1 = cache.transpile_key(circuit, dev,
                                 self._alloc(circuit, partition, 1), hook)
        assert k0 != k1
        d0 = cache.transpile_key(circuit, dev,
                                 self._alloc(circuit, partition, 0),
                                 _default_transpiler)
        d1 = cache.transpile_key(circuit, dev,
                                 self._alloc(circuit, partition, 1),
                                 _default_transpiler)
        assert d0 == d1

    def test_cna_adapter_is_index_sensitive(self):
        """CNA's per-index precompiled lookup must never alias across
        queue positions."""
        dev = ibm_toronto()
        circuits = [_measured(random_circuit(3, 6, seed=s))
                    for s in (1, 2)]
        compilation = cna_compile(circuits, dev)
        fn = compilation.transpiler_fn()
        cache = ExecutionCache()
        allocs = compilation.allocation.allocations
        keys = {
            cache.transpile_key(a.circuit, dev, a, fn) for a in allocs
        }
        assert len(keys) == len(allocs)
        # Same circuit/partition at two indices -> distinct entries.
        a0 = allocs[0]
        moved = ProgramAllocation(99, a0.circuit, a0.partition, a0.efs,
                                  a0.crosstalk_pairs)
        assert cache.transpile_key(a0.circuit, dev, a0, fn) \
            != cache.transpile_key(a0.circuit, dev, moved, fn)

    def test_partition_still_differentiates(self):
        dev = ibm_toronto()
        cache = ExecutionCache()
        circuit = _measured(random_circuit(3, 6, seed=4))
        k_a = cache.transpile_key(circuit, dev,
                                  self._alloc(circuit, (0, 1, 2), 0),
                                  _default_transpiler)
        k_b = cache.transpile_key(circuit, dev,
                                  self._alloc(circuit, (1, 2, 3), 0),
                                  _default_transpiler)
        assert k_a != k_b


class TestCompileServiceRouting:
    def test_choose_route_thresholds(self):
        assert CompileService.choose_route(1, 65, cores=4) == "serial"
        assert CompileService.choose_route(2, 65, cores=4) == "serial"
        assert CompileService.choose_route(3, 27, cores=4) == "thread"
        assert CompileService.choose_route(12, 27, cores=4) == "thread"
        assert CompileService.choose_route(8, 30, cores=4) == "process"
        assert CompileService.choose_route(7, 65, cores=4) == "thread"
        # A single core never auto-routes to any pool (measured: threads
        # ~0.9x and chunked process ~0.6x vs serial on a 1-core host).
        assert CompileService.choose_route(8, 30, cores=1) == "serial"
        assert CompileService.choose_route(150, 27, cores=1) == "serial"

    def test_auto_tiny_batch_runs_inline(self):
        dev = ibm_toronto()
        circuits = [_measured(random_circuit(3, 6, seed=1))]
        job = get_allocator("qucp").allocate(circuits, dev)
        with CompileService(mode="auto") as svc:
            svc.compile_allocation(job)
            assert svc._thread_pool is None  # noqa: SLF001
            assert svc._process_pool is None  # noqa: SLF001

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            CompileService(mode="fork")

    def test_process_chunked_matches_serial(self):
        """Chunk-sharded process compilation (fingerprint rehydration in
        the worker) returns results identical to inline compilation."""
        dev = ibm_toronto()
        circuits = [_measured(random_circuit(3, 6, seed=s))
                    for s in range(4)]
        # Duplicate a circuit so within-batch coalescing is exercised.
        circuits.append(circuits[0].copy())
        job = AllocationResult(method="test", device=dev)
        engine = get_allocator("qucp")
        for i, c in enumerate(circuits):
            placement = engine.best_placement(c, dev)
            job.allocations.append(ProgramAllocation(
                i, c, placement.partition, placement.efs))
        with CompileService(mode="serial") as ser:
            want = ser.compile_allocation(job)
        with CompileService(max_workers=2, mode="process") as svc:
            got = svc.compile_allocation(job)
            submitted = svc.stats["submitted"]
            assert svc.stats["chunks"] >= 1
        for a, b in zip(want, got):
            assert a.circuit == b.circuit
            assert a.initial_layout == b.initial_layout
            assert a.final_layout == b.final_layout
            assert a.num_swaps == b.num_swaps
        # Programs 0 and 4 share a placement -> one compile between them
        # iff their keys matched (identical placement); at minimum the
        # service never compiles more than the unique keys.
        assert submitted <= len(circuits)


class TestRunBatchPrefetchRouting:
    def test_prefetch_uses_chunked_process_path(self):
        """run_batch's prefetch goes through submit_allocation, so an
        explicit process-mode service shards the prefetched batch."""
        from repro.core import BatchJob, run_batch

        dev = ibm_toronto()
        circuits = [_measured(random_circuit(3, 6, seed=s))
                    for s in range(3)]
        job = get_allocator("qucp").allocate(circuits, dev)
        with CompileService(max_workers=2, mode="process") as svc:
            direct = run_batch([BatchJob(job, shots=64, seed=5)])
            via = run_batch([BatchJob(job, shots=64, seed=5)],
                            compile_service=svc)
            assert svc.stats["chunks"] >= 1
            assert svc.stats["submitted"] == 3
        for a, b in zip(via[0], direct[0]):
            assert a.transpiled.circuit == b.transpiled.circuit
            assert a.result.probabilities == b.result.probabilities


class TestSchedulerStructuralDedup:
    def test_repeat_submissions_hit_cache(self):
        """The same program at five distinct queue indices compiles
        once through the scheduler's compile service."""
        dev = ibm_toronto()
        base = _measured(random_circuit(3, 6, seed=9))
        subs = [SubmittedProgram(base.copy(), arrival_ns=i * 1e5)
                for i in range(5)]
        with CompileService(mode="serial") as svc:
            scheduler = CloudScheduler(dev, max_batch_size=1,
                                       fidelity_threshold=0.0,
                                       compile_service=svc)
            outcome = scheduler.schedule(subs)
            assert outcome.compile_requests == 5
            assert svc.stats["submitted"] == 1
            assert (svc.stats["short_circuits"]
                    + svc.stats["coalesced"]) == 4

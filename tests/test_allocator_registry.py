"""The allocator strategy layer: registry, engine caching, equivalence.

The JSON goldens in ``tests/data/allocator_golden.json`` were captured
from the pre-refactor per-method implementations; the registry-served
strategies must reproduce them bit-for-bit.
"""

import json
import os

import pytest

from repro.core import (
    Allocator,
    allocation_engine,
    available_allocators,
    get_allocator,
    qucloud_allocate,
)
from repro.workloads import workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "allocator_golden.json")
METHODS = ("qucp", "qumc", "qucloud", "multiqc", "cna")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


class TestRegistry:
    @pytest.mark.parametrize("name", METHODS)
    def test_round_trip(self, name):
        allocator = get_allocator(name)
        assert isinstance(allocator, Allocator)
        assert allocator.name == name

    def test_available_lists_all_methods(self):
        assert set(METHODS) <= set(available_allocators())

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_allocator("definitely-not-a-method")

    def test_parameters_forwarded(self):
        allocator = get_allocator("qucp", sigma=7.5)
        assert allocator.sigma == 7.5
        assert allocator.method_label() == "qucp(sigma=7.5)"

    def test_cna_not_incremental(self):
        assert get_allocator("cna").supports_incremental is False
        assert get_allocator("qucp").supports_incremental is True


class TestGoldenEquivalence:
    """Registry strategies == pre-refactor outputs on the suite."""

    @pytest.mark.parametrize("method", METHODS)
    def test_matches_pre_refactor(self, method, golden, toronto, manhattan):
        devices = {"toronto": toronto, "manhattan": manhattan}
        for mix, entry in golden["allocators"].items():
            if method == "cna" and entry["device"] == "manhattan":
                continue  # full 65q compile; covered on toronto mixes
            device = devices[entry["device"]]
            circuits = [workload(n).circuit() for n in entry["workloads"]]
            alloc = get_allocator(method).allocate(circuits, device)
            assert [list(p) for p in alloc.partitions] == \
                entry[method]["partitions"], (method, mix)
            got_efs = [a.efs for a in
                       sorted(alloc.allocations, key=lambda a: a.index)]
            assert got_efs == pytest.approx(entry[method]["efs"],
                                            abs=1e-9), (method, mix)


class TestEngineCaching:
    def test_engine_is_shared_per_device(self, toronto):
        assert allocation_engine(toronto) is allocation_engine(toronto)

    def test_placement_cache_hits(self, toronto):
        engine = allocation_engine(toronto)
        allocator = get_allocator("qucp")
        circuit = workload("adder").circuit()
        first = engine.solo_best(allocator, circuit)
        size_after_first = engine.cache_sizes["placements"]
        second = engine.solo_best(allocator, circuit)
        assert second is first  # cached object, not a recomputation
        assert engine.cache_sizes["placements"] == size_after_first

    def test_structurally_equal_circuits_share_entries(self, toronto):
        """Placements key on (num_qubits, #2q, #1q), so structural
        twins reuse each other's search."""
        engine = allocation_engine(toronto)
        allocator = get_allocator("qucp")
        a = engine.solo_best(allocator, workload("adder").circuit())
        b = engine.solo_best(allocator, workload("adder").circuit())
        assert b is a

    def test_sigma_isolates_cache_namespaces(self, toronto):
        engine = allocation_engine(toronto)
        circuit = workload("alu-v0_27").circuit()
        four = engine.solo_best(get_allocator("qucp", sigma=4.0), circuit)
        one = engine.solo_best(get_allocator("qucp", sigma=1.0), circuit)
        # Different sigma = different scoring namespace; both cached.
        assert four is not one

    def test_collected_allocator_cannot_alias_cache(self, toronto):
        """Regression: the default cache token is the allocator instance
        itself (pinned by the cache), so a new instance created after a
        ``del`` can never be served the old instance's placements —
        even if CPython recycles the freed id."""
        from repro.core import (AllocationEngine, PlacementContext,
                                QumcAllocator, oracle_characterization,
                                qucp_allocate)

        engine = allocation_engine(toronto)
        circuit = workload("alu-v0_27").circuit()
        # Crowd the chip so every remaining candidate neighbours an
        # allocated link and the ratio map actually steers the choice.
        batch = qucp_allocate(
            [workload("alu-v0_27").circuit() for _ in range(3)], toronto)
        ctx = PlacementContext.from_parts(batch.partitions, toronto)
        inflated = {k: 100.0 for k in oracle_characterization(toronto)}
        a = QumcAllocator(ratio_map=inflated)
        stale = engine.best_placement(a, circuit, ctx)
        del a
        b = QumcAllocator(ratio_map={k: 1.0 for k in inflated})
        got = engine.best_placement(b, circuit, ctx)
        fresh = AllocationEngine(toronto).best_placement(b, circuit, ctx)
        assert got.partition == fresh.partition
        assert got.efs == pytest.approx(fresh.efs)
        assert got.efs < stale.efs  # flat ratios must score better

    def test_oracle_qumc_instances_share_cache(self, toronto):
        """Registry-default (oracle-backed) QuMC is parameter-free per
        device: separate instances must hit one cache namespace."""
        engine = allocation_engine(toronto)
        circuit = workload("bell").circuit()
        first = engine.solo_best(get_allocator("qumc"), circuit)
        second = engine.solo_best(get_allocator("qumc"), circuit)
        assert second is first

    def test_equal_ratio_maps_share_cache(self, toronto):
        """Explicit QuMC ratio maps key the cache by content, so
        repeated qumc_allocate-style calls with the same data reuse
        placements instead of growing an instance-keyed table."""
        from repro.core import QumcAllocator, oracle_characterization

        engine = allocation_engine(toronto)
        circuit = workload("qec_en").circuit()
        base = oracle_characterization(toronto)
        first = engine.solo_best(QumcAllocator(ratio_map=dict(base)),
                                 circuit)
        second = engine.solo_best(QumcAllocator(ratio_map=dict(base)),
                                  circuit)
        assert second is first

    def test_legacy_best_placement_honours_blocked_qubits(self, toronto):
        """The OnlineScheduler shim must treat allocated_qubits as
        blocked even when they come from no listed partition."""
        from repro.core import OnlineScheduler

        scheduler = OnlineScheduler(toronto)
        circuit = workload("adder").circuit()
        solo = scheduler._best_placement(circuit, [], [])
        masked = scheduler._best_placement(circuit, list(solo[0]), [])
        assert masked is not None
        assert not set(masked[0]) & set(solo[0])

    def test_engine_registry_does_not_pin_devices(self):
        """Regression: dropping a device releases its engine and caches
        instead of leaking them for process lifetime."""
        import gc
        import weakref

        from repro.core import allocators as allocators_module
        from repro.hardware import linear_device

        device = linear_device(6, seed=99)
        engine = allocation_engine(device)
        engine.solo_best(get_allocator("qucp"), workload("lin").circuit())
        key = id(device)
        ref = weakref.ref(device)
        del device, engine
        gc.collect()
        assert ref() is None
        assert key not in allocators_module._ENGINES


class TestQucloudDegenerateDevice:
    def test_disconnected_device_no_division_by_zero(self):
        """A chip whose best fidelity degree is 0 (no couplings at all)
        must not crash the CDAP degree normalization."""
        from repro.circuits import QuantumCircuit
        from repro.hardware import Calibration, Device
        from repro.hardware.crosstalk import CrosstalkModel
        from repro.hardware.topology import CouplingMap

        coupling = CouplingMap(3, ())
        calibration = Calibration(
            oneq_error={q: 1e-3 for q in range(3)},
            readout_error={q: (0.02, 0.02) for q in range(3)},
            t1={q: 80_000.0 for q in range(3)},
            t2={q: 70_000.0 for q in range(3)},
        )
        device = Device("disconnected3", coupling, calibration,
                        CrosstalkModel())
        qc = QuantumCircuit(1, name="oneq")
        qc.x(0)
        qc.measure_all()
        alloc = qucloud_allocate([qc], device)
        assert len(alloc.partitions) == 1
        assert len(alloc.partitions[0]) == 1

"""Integration: QuMC consuming a *real* SRB characterization campaign.

Closes the loop the paper describes: characterize the device with
simulated SRB (expensive), hand the measured crosstalk map to QuMC, and
check its decisions line up with both the oracle map and QuCP's sigma
emulation.
"""

import pytest

from repro.characterization import characterize_crosstalk, srb_experiments
from repro.core import (
    oracle_characterization,
    qucp_allocate,
    qumc_allocate,
)
from repro.hardware import linear_device
from repro.workloads import workload


@pytest.fixture(scope="module")
def characterized_line():
    """A small chain device plus its measured SRB crosstalk map."""
    device = linear_device(9, seed=5, crosstalk_fraction=0.6)
    charac = characterize_crosstalk(
        device, seeds=2, shots=0, lengths=(1, 8, 20, 40))
    return device, charac


class TestSRBtoQuMC:
    def test_measured_map_close_to_truth(self, characterized_line):
        device, charac = characterized_line
        measured = charac.ratio_map()
        for exp in srb_experiments(device.coupling):
            truth = device.crosstalk.factor(exp.link_a, exp.link_b)
            got = measured[frozenset((exp.link_a, exp.link_b))]
            assert got == pytest.approx(truth, rel=0.6, abs=0.6)

    def test_qumc_accepts_characterization_object(self,
                                                  characterized_line):
        device, charac = characterized_line
        circuits = [workload("fred").circuit() for _ in range(2)]
        alloc = qumc_allocate(circuits, device, characterization=charac)
        assert len(alloc.allocations) == 2
        seen = set()
        for part in alloc.partitions:
            assert not seen & set(part)
            seen.update(part)

    def test_measured_qumc_close_to_oracle_qumc(self, characterized_line):
        device, charac = characterized_line
        circuits = [workload("fred").circuit() for _ in range(2)]
        measured = qumc_allocate(circuits, device,
                                 characterization=charac)
        oracle = qumc_allocate(circuits, device,
                               ratio_map=oracle_characterization(device))
        assert set(map(tuple, measured.partitions)) == set(
            map(tuple, oracle.partitions))

    def test_qucp_sigma4_consistent_with_measured_qumc(
            self, characterized_line):
        device, charac = characterized_line
        circuits = [workload("fred").circuit() for _ in range(2)]
        qumc = qumc_allocate(circuits, device, characterization=charac)
        qucp = qucp_allocate(circuits, device, sigma=4.0)
        assert set(map(tuple, qucp.partitions)) == set(
            map(tuple, qumc.partitions))

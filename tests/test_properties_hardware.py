"""Property-based tests over randomized device topologies and the
allocation/queueing layers."""

import math

import networkx as nx
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import JobSpec, batched_speedup, simulate_fifo_queue
from repro.core.partition import (
    crosstalk_suspect_pairs,
    grow_partition_candidates,
)
from repro.hardware import (
    CouplingMap,
    generate_calibration,
    generate_crosstalk_model,
)


@st.composite
def random_coupling(draw, min_qubits=4, max_qubits=12):
    """A connected random device topology (tree plus extra edges)."""
    n = draw(st.integers(min_qubits, max_qubits))
    seed = draw(st.integers(0, 10_000))
    graph = nx.random_labeled_tree(n, seed=seed)
    extra = draw(st.integers(0, n // 2))
    rng = nx.utils.create_random_state(seed + 1)
    nodes = list(graph.nodes)
    for _ in range(extra):
        a, b = rng.choice(len(nodes)), rng.choice(len(nodes))
        if a != b:
            graph.add_edge(nodes[a], nodes[b])
    return CouplingMap(n, tuple(graph.edges))


class TestTopologyProperties:
    @given(random_coupling())
    @settings(max_examples=30, deadline=None)
    def test_pair_distance_symmetric(self, coupling):
        edges = coupling.edges
        for i, e1 in enumerate(edges[:6]):
            for e2 in edges[i:i + 6]:
                assert coupling.pair_distance(e1, e2) == \
                    coupling.pair_distance(e2, e1)

    @given(random_coupling())
    @settings(max_examples=30, deadline=None)
    def test_one_hop_pairs_are_disjoint_links(self, coupling):
        for e1, e2 in coupling.all_one_hop_edge_pairs():
            assert not set(e1) & set(e2)
            assert coupling.pair_distance(e1, e2) == 1

    @given(random_coupling())
    @settings(max_examples=30, deadline=None)
    def test_distance_triangle_inequality(self, coupling):
        n = coupling.num_qubits
        for a in range(min(n, 4)):
            for b in range(min(n, 4)):
                for c in range(min(n, 4)):
                    assert coupling.distance(a, c) <= \
                        coupling.distance(a, b) + coupling.distance(b, c)


class TestCalibrationProperties:
    @given(random_coupling(), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_generated_calibration_complete_and_physical(self, coupling,
                                                         seed):
        cal = generate_calibration(coupling, seed=seed)
        assert set(cal.twoq_error) == set(coupling.edges)
        for q in range(coupling.num_qubits):
            assert 0 < cal.oneq_error[q] <= 1e-2
            p01, p10 = cal.readout_error[q]
            assert 0 <= p01 <= 0.3 and 0 <= p10 <= 0.35
            assert cal.t2[q] <= 2 * cal.t1[q] + 1e-6
        for err in cal.twoq_error.values():
            assert 0 < err <= 0.15

    @given(random_coupling(), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_crosstalk_factors_bounded(self, coupling, seed):
        model = generate_crosstalk_model(coupling, seed=seed)
        for key, factor in model.factors.items():
            assert factor >= 1.0
            e1, e2 = sorted(key)
            assert coupling.pair_distance(tuple(e1), tuple(e2)) == 1


class TestPartitionProperties:
    @given(random_coupling(min_qubits=6), st.integers(2, 4),
           st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_candidates_connected_right_size_free(self, coupling, size,
                                                  seed):
        assume(size <= coupling.num_qubits)
        cal = generate_calibration(coupling, seed=seed)
        blocked = tuple(range(0, coupling.num_qubits, 3))
        for cand in grow_partition_candidates(size, coupling, cal,
                                              allocated=blocked):
            assert len(cand.qubits) == size
            assert coupling.is_connected_subset(cand.qubits)
            assert not set(cand.qubits) & set(blocked)

    @given(random_coupling(min_qubits=6), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_suspects_subset_of_internal_links(self, coupling, seed):
        cal = generate_calibration(coupling, seed=seed)
        candidates = grow_partition_candidates(3, coupling, cal)
        assume(len(candidates) >= 2)
        first = candidates[0].qubits
        second = next(
            (c.qubits for c in candidates[1:]
             if not set(c.qubits) & set(first)), None)
        assume(second is not None)
        suspects = crosstalk_suspect_pairs(second, coupling, [first])
        internal = set(coupling.subgraph_edges(second))
        assert set(suspects) <= internal


class TestQueueProperties:
    @given(st.lists(st.floats(min_value=1.0, max_value=1e6),
                    min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_fifo_makespan_is_total_work(self, durations):
        report = simulate_fifo_queue([JobSpec(d) for d in durations])
        assert report.makespan_ns == pytest.approx(sum(durations))

    @given(st.integers(1, 30), st.integers(1, 30),
           st.floats(min_value=1.0, max_value=1e6))
    @settings(max_examples=40, deadline=None)
    def test_speedup_bounded_by_batch_size(self, n, k, dur):
        out = batched_speedup(n, k, dur)
        assert 1.0 - 1e-9 <= out["runtime_reduction"] <= k + 1e-9

    @given(st.integers(1, 30), st.floats(min_value=1.0, max_value=1e6))
    @settings(max_examples=30, deadline=None)
    def test_full_batching_speedup_is_program_count(self, n, dur):
        out = batched_speedup(n, n, dur)
        assert out["runtime_reduction"] == pytest.approx(n)
